"""Unit tests for the minimal HTTP layer (parse + render)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.httpio import (
    HttpError,
    read_request,
    read_response,
    render_response,
)


def parse(raw: bytes, *, max_body: int = 1 << 20):
    """Feed raw bytes through read_request on a private loop."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)
    return asyncio.run(run())


class TestParse:
    def test_get_with_query(self):
        request = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.query == {"verbose": "1"}
        assert request.body == b""
        assert request.keep_alive

    def test_post_json_body(self):
        body = json.dumps({"workload": "NN"}).encode()
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.json() == {"workload": "NN"}

    def test_connection_close_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_bad_json_is_http_error(self):
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n"
                        b"Content-Length: 3\r\n\r\n{{{")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_json"

    def test_empty_body_parses_as_empty_object(self):
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n\r\n")
        assert request.json() == {}

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
                  + b"x" * 100, max_body=10)
        assert excinfo.value.status == 413

    def test_bad_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_bodies_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.code == "unsupported_transfer_encoding"

    def test_bad_content_length_rejected(self):
        with pytest.raises(HttpError):
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")


def parse_response(raw: bytes):
    """Feed raw bytes through read_response on a private loop."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_response(reader)
    return asyncio.run(run())


class TestReadResponse:
    def test_roundtrip_of_rendered_response(self):
        status, headers, body = parse_response(
            render_response(200, {"ok": True}))
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_header_overrun_is_502_not_limit_overrun_error(self):
        """Headers past the StreamReader's 64 KiB scan limit raise
        ``LimitOverrunError`` inside ``readuntil``; that must surface
        as a transport-class ``HttpError`` the failover handlers catch,
        never as a bare asyncio exception turning into a client 500."""
        raw = (b"HTTP/1.1 200 OK\r\n"
               + b"X-Junk: " + b"a" * (80 * 1024) + b"\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            parse_response(raw)
        assert excinfo.value.status == 502
        assert excinfo.value.code == "upstream_headers_too_large"

    def test_oversized_but_terminated_headers_rejected(self):
        # Below the stream limit, above MAX_HEADER_BYTES: the explicit
        # size check catches what readuntil lets through.
        raw = (b"HTTP/1.1 200 OK\r\n"
               + b"X-Junk: " + b"a" * (40 * 1024) + b"\r\n"
               + b"Content-Length: 0\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            parse_response(raw)
        assert excinfo.value.status == 502
        assert excinfo.value.code == "upstream_headers_too_large"

    def test_missing_content_length_is_502(self):
        with pytest.raises(HttpError) as excinfo:
            parse_response(b"HTTP/1.1 200 OK\r\n\r\n")
        assert excinfo.value.code == "bad_upstream_response"


class TestRender:
    def test_response_roundtrip(self):
        raw = render_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_retry_after_header(self):
        raw = render_response(429, {"error": {}}, retry_after_s=1.0)
        assert b"Retry-After: 1" in raw

    def test_connection_close(self):
        raw = render_response(200, {}, keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_payload_shape(self):
        error = HttpError(429, "queue_full", "full", retry_after_s=2.0,
                          detail={"depth": 9})
        payload = error.payload()
        assert payload["error"]["code"] == "queue_full"
        assert payload["error"]["retry_after_s"] == 2.0
        assert payload["error"]["depth"] == 9
