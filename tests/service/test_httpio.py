"""Unit tests for the minimal HTTP layer (parse + render)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.httpio import (
    HttpError,
    read_request,
    render_response,
)


def parse(raw: bytes, *, max_body: int = 1 << 20):
    """Feed raw bytes through read_request on a private loop."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)
    return asyncio.run(run())


class TestParse:
    def test_get_with_query(self):
        request = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.query == {"verbose": "1"}
        assert request.body == b""
        assert request.keep_alive

    def test_post_json_body(self):
        body = json.dumps({"workload": "NN"}).encode()
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.json() == {"workload": "NN"}

    def test_connection_close_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_bad_json_is_http_error(self):
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n"
                        b"Content-Length: 3\r\n\r\n{{{")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_json"

    def test_empty_body_parses_as_empty_object(self):
        request = parse(b"POST /v1/simulate HTTP/1.1\r\n\r\n")
        assert request.json() == {}

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
                  + b"x" * 100, max_body=10)
        assert excinfo.value.status == 413

    def test_bad_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_bodies_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.code == "unsupported_transfer_encoding"

    def test_bad_content_length_rejected(self):
        with pytest.raises(HttpError):
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")


class TestRender:
    def test_response_roundtrip(self):
        raw = render_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_retry_after_header(self):
        raw = render_response(429, {"error": {}}, retry_after_s=1.0)
        assert b"Retry-After: 1" in raw

    def test_connection_close(self):
        raw = render_response(200, {}, keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_payload_shape(self):
        error = HttpError(429, "queue_full", "full", retry_after_s=2.0,
                          detail={"depth": 9})
        payload = error.payload()
        assert payload["error"]["code"] == "queue_full"
        assert payload["error"]["retry_after_s"] == 2.0
        assert payload["error"]["depth"] == 9
