"""Routing acceptance tests: bit-identity, exactly-once, warmup.

The sharded tier's core promise is that scale-out is *transparent*:
a routed response is byte-for-byte what a single node would have
served, N concurrent identical requests still execute exactly once —
now cluster-wide — and membership changes move cache entries instead
of losing them.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

import repro.service.core as core
from repro.service.client import FailoverClient, ServiceError
from repro.service.embed import EmbeddedCluster, EmbeddedService
from repro.service.ring import HashRing
from repro.service.shard import parse_shard_spec

SIM = {"workload": "NN", "gpu": "GTX980", "scale": 0.2, "seed": 7}


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def raw_post(port: int, path: str, payload: dict) -> "tuple[int, bytes]":
    """One request, raw response body bytes — no client-side parsing."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60.0)
    try:
        connection.request("POST", path, body=json.dumps(payload),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def cluster_executed(cluster: EmbeddedCluster) -> int:
    """Total jobs *executed* (not deduped/cached) across live shards."""
    total = 0
    for index, shard in enumerate(cluster.shards):
        if not shard.alive:
            continue
        with cluster.shard_client(index) as client:
            total += client.metrics()["jobs"]["executed"]
    return total


def test_routed_response_bytes_equal_single_node():
    """A cold request through the router must produce *byte-identical*
    HTTP bodies to a cold request against a standalone service."""
    payload = dict(SIM)
    with EmbeddedCluster(shards=2, workers=0) as cluster:
        status, routed = raw_post(cluster.router.port, "/v1/simulate",
                                  payload)
        assert status == 200
    with EmbeddedService(workers=0, cache=False) as single:
        status, direct = raw_post(single.port, "/v1/simulate", payload)
        assert status == 200
    assert routed == direct


def test_16_concurrent_identical_requests_execute_once(monkeypatch):
    """The acceptance criterion: 16 concurrent identical requests
    through the router collapse to exactly one execution cluster-wide,
    and all 16 responses carry the same key and result."""
    release = threading.Event()
    real = core._execute_batch

    def gated(batch):
        assert release.wait(timeout=30.0), "gate never released"
        return real(batch)

    monkeypatch.setattr(core, "_execute_batch", gated)
    with EmbeddedCluster(shards=2, workers=0) as cluster:
        port = cluster.router.port
        answers: "list[tuple[int, bytes]]" = []

        def one():
            answers.append(raw_post(port, "/v1/simulate", dict(SIM)))

        threads = [threading.Thread(target=one, daemon=True)
                   for _ in range(16)]
        for thread in threads:
            thread.start()
        # Hold the gate until every request is admitted on its shard:
        # they are all in flight *simultaneously*, so nothing below
        # can be explained by lucky serialization.
        submitted = lambda: sum(
            cluster.shards[i].service.metrics.jobs_submitted
            for i in range(2))
        assert wait_until(lambda: submitted() >= 16), \
            f"only {submitted()} of 16 requests admitted"
        release.set()
        for thread in threads:
            thread.join(timeout=60.0)

        assert len(answers) == 16
        assert all(status == 200 for status, _ in answers)
        documents = [json.loads(body) for _, body in answers]
        assert len({doc["key"] for doc in documents}) == 1
        results = {json.dumps(doc["result"], sort_keys=True)
                   for doc in documents}
        assert len(results) == 1, "divergent results across duplicates"
        assert cluster_executed(cluster) == 1


def test_sweep_splits_by_owner_and_preserves_order():
    """A sweep fans out by ring owner but reassembles in submission
    order, with results identical to a single node's sweep."""
    jobs = [{"workload": "NN", "gpu": "GTX980", "scale": 0.2,
             "seed": seed} for seed in range(6)]
    with EmbeddedCluster(shards=2, workers=0) as cluster:
        with cluster.client() as client:
            routed = client.sweep(jobs)
        spread = {name: info["routed"]
                  for name, info in cluster.client().metrics()
                  ["shards"].items()}
    with EmbeddedService(workers=0, cache=False) as single:
        with single.client() as client:
            direct = client.sweep(jobs)
    assert routed == direct
    assert sum(spread.values()) >= 1  # at least one group forwarded


def test_join_warms_exactly_the_ring_assigned_slice():
    """``add_shard`` copies to the newcomer precisely the cached keys
    the ring now assigns it — computed independently here with a
    reference ring."""
    seeds = range(8)
    with EmbeddedCluster(shards=2, replication=2, workers=0) as cluster:
        with cluster.client() as client:
            keys = [client.simulate(**{**SIM, "seed": seed}, full=True)
                    ["key"] for seed in seeds]
            cluster.add_shard(warm=True)
            metrics = client.metrics()
        reference = HashRing(["shard-0", "shard-1", "shard-2"])
        expected = {key for key in keys
                    if "shard-2" in reference.owners(key, 2)}
        assert metrics["routing"]["warmed_entries"] == len(expected)
        with cluster.shard_client(2) as shard:
            manifest = shard._call("GET", "/v1/cache/manifest")
        assert expected <= set(manifest["keys"])
        # And the cluster still serves every key bit-identically.
        with cluster.client() as client:
            for seed in seeds:
                assert client.simulate(**{**SIM, "seed": seed},
                                       full=True)["key"] in keys


def test_graceful_leave_redistributes_the_slice():
    """Removing a shard pushes its cache slice to the survivors first,
    so nothing previously cached needs re-execution."""
    seeds = range(6)
    with EmbeddedCluster(shards=3, replication=2, workers=0) as cluster:
        with cluster.client() as client:
            for seed in seeds:
                client.simulate(**{**SIM, "seed": seed})
        with cluster.shard_client(2) as shard:
            leaver_held = len(shard._call("GET", "/v1/cache/manifest")
                              ["keys"])
        def survivors_executed():
            total = 0
            for index in (0, 1):
                with cluster.shard_client(index) as shard:
                    total += shard.metrics()["jobs"]["executed"]
            return total

        executed_before = survivors_executed()
        answer = cluster.remove_shard(2, warm=True)
        assert answer["left"] == "shard-2"
        if leaver_held:
            assert answer["redistributed_entries"] >= leaver_held
        with cluster.client() as client:
            for seed in seeds:
                client.simulate(**{**SIM, "seed": seed})
        # Every re-request was served from a cache somewhere.
        assert survivors_executed() == executed_before


def test_cache_entry_transfer_roundtrip():
    """The transfer endpoints move entries verbatim: export from one
    service, push into another, and the receiver serves it as a cache
    hit."""
    with EmbeddedCluster(shards=2, workers=0) as cluster:
        with cluster.client() as client:
            envelope = client.simulate(**SIM, full=True)
        key = envelope["key"]
        owner = None
        for index in range(2):
            with cluster.shard_client(index) as shard:
                if key in shard._call("GET", "/v1/cache/manifest")["keys"]:
                    owner = index
        assert owner is not None
        other = 1 - owner
        with cluster.shard_client(owner) as source:
            entry = source._call("GET", f"/v1/cache/entry?key={key}")
        assert entry["key"] == key
        with cluster.shard_client(other) as target:
            pushed = target._call("POST", "/v1/cache/push",
                                  {"entries": [entry]})
            assert pushed["imported"] == 1
            served = target._call("POST", "/v1/simulate", dict(SIM))
        assert served["source"] == "cache"
        assert served["result"] == envelope["result"]


def test_router_passes_through_shard_errors_verbatim():
    """Deterministic 4xx answers from a shard relay unchanged (no
    failover, no rewriting) — the router only retries what retrying
    can fix."""
    with EmbeddedCluster(shards=2, workers=0) as cluster:
        with cluster.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate("NOPE", "GTX980")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert "unknown workload" in str(excinfo.value)
        metrics = cluster.client().metrics()
        assert metrics["routing"]["failovers"] == 0


def test_failover_client_walks_endpoints():
    """The client-side half of availability: a FailoverClient keeps
    working when its first endpoint is gone."""
    first = EmbeddedService(workers=0, cache=False).start()
    second = EmbeddedService(workers=0, cache=False).start()
    try:
        client = FailoverClient([("127.0.0.1", first.port),
                                 ("127.0.0.1", second.port)])
        direct = client.simulate(**SIM)
        first.kill()
        assert client.simulate(**SIM) == direct
        assert client.failovers >= 1
        client.close()
    finally:
        if first.alive:
            first.stop()
        second.stop()


def test_parse_shard_spec():
    spec = parse_shard_spec("10.0.0.5:9000", 3)
    assert (spec.name, spec.host, spec.port) == ("shard-3", "10.0.0.5",
                                                 9000)
    named = parse_shard_spec("cache-a=h1:81", 0)
    assert (named.name, named.host, named.port) == ("cache-a", "h1", 81)
    with pytest.raises(ValueError):
        parse_shard_spec("no-port", 0)


class TestWarmupPartialSources:
    """`warm_shard` must only count a key as held by the target when
    its copy actually landed — a failed export from one source leaves
    the key eligible for later sources holding the same entry."""

    def test_failed_copy_retries_against_a_later_source(self):
        import asyncio
        import base64
        import hashlib
        import pickle

        from repro.service.config import RouterConfig
        from repro.service.shard import ShardRouter, ShardSpec

        k1 = hashlib.sha256(b"k1").hexdigest()
        k2 = hashlib.sha256(b"k2").hexdigest()
        data = base64.b64encode(pickle.dumps({"cycles": 1})).decode()
        router = ShardRouter(RouterConfig(replication=3), [
            ShardSpec("a", "127.0.0.1", 1),
            ShardSpec("b", "127.0.0.1", 2),
            ShardSpec("t", "127.0.0.1", 3),
        ])
        pushed = []

        async def fake_try_json(name, method, target, payload=None):
            if target == "/v1/cache/manifest":
                return 200, {"keys": {"a": [k1, k2], "b": [k2],
                                      "t": []}[name]}
            if target.startswith("/v1/cache/entry"):
                key = target.rpartition("key=")[2]
                if name == "a" and key == k2:
                    return 0, {}  # source a cannot export this entry
                return 200, {"key": key, "data": data}
            assert target == "/v1/cache/push"
            pushed.append((name,
                           sorted(e["key"] for e in payload["entries"])))
            return 200, {"imported": len(payload["entries"]),
                         "rejected": []}

        router._try_json = fake_try_json
        total = asyncio.run(router.warm_shard("t", sources=["a", "b"]))
        # k1 arrives from a; k2 fails on a but must still come from b.
        assert total == 2
        assert ("t", [k1]) in pushed
        assert ("t", [k2]) in pushed
        assert router.metrics.warmed_entries == 2
