"""Batch occupancy: the worker-side grouping and the ``/metrics`` view.

The micro-batcher already counts batches and jobs; this file pins the
two additions that ride the batched backend — the occupancy section of
the metrics snapshot (``capacity``/``fill_ratio`` against the
configured ``batch_max``) and the worker function's grouping of a
micro-batch by :func:`~repro.engine.executors.batch_key`, including
its per-job error isolation.
"""

from __future__ import annotations

from repro.engine.job import SimJob
from repro.gpu.backend import BACKEND_ENV
from repro.gpu.metrics import metrics_fingerprint
from repro.service.core import _execute_batch
from repro.service.metrics import ServiceMetrics


def simulate_job(workload: str, scheme: str, seed: int = 0) -> SimJob:
    return SimJob.make("simulate", workload=workload, gpu="Tesla K40",
                       scheme=scheme, scale=0.3, seed=seed, warmups=1)


class TestMetricsSnapshot:
    def snapshot(self, metrics, **overrides):
        kwargs = {"queue_depth": 0, "queue_capacity": 64,
                  "draining": False, "batch_max": 8}
        kwargs.update(overrides)
        return metrics.snapshot(**kwargs)

    def test_occupancy_fields(self):
        metrics = ServiceMetrics()
        metrics.batches = 2
        metrics.batch_jobs = 12
        batches = self.snapshot(metrics)["batches"]
        assert batches["count"] == 2
        assert batches["jobs"] == 12
        assert batches["mean_size"] == 6.0
        assert batches["capacity"] == 8
        assert batches["fill_ratio"] == 12 / 16

    def test_occupancy_zero_safe(self):
        batches = self.snapshot(ServiceMetrics())["batches"]
        assert batches["fill_ratio"] == 0.0
        assert batches["capacity"] == 8

    def test_snapshot_without_batch_max(self):
        # Older callers that omit batch_max still get a document.
        batches = ServiceMetrics().snapshot(
            queue_depth=0, queue_capacity=4, draining=False)["batches"]
        assert batches["capacity"] is None
        assert batches["fill_ratio"] == 0.0


class TestWorkerGrouping:
    def test_grouped_outcomes_match_per_job(self, monkeypatch):
        batch = [simulate_job("NN", "BSL"), simulate_job("NN", "RD"),
                 simulate_job("ATX", "BSL")]
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        serial = _execute_batch(batch)
        monkeypatch.setenv(BACKEND_ENV, "batched")
        grouped = _execute_batch(batch)
        assert [o[0] for o in grouped] == ["ok"] * 3
        for ref, got in zip(serial, grouped):
            assert ref[0] == got[0] == "ok"
            assert metrics_fingerprint(ref[1]) == metrics_fingerprint(got[1])

    def test_outcomes_keep_submission_order(self, monkeypatch):
        # Interleave two groups so index bookkeeping is exercised.
        batch = [simulate_job("NN", "BSL"), simulate_job("ATX", "BSL"),
                 simulate_job("NN", "RD"), simulate_job("ATX", "RD")]
        monkeypatch.setenv(BACKEND_ENV, "batched")
        outcomes = _execute_batch(batch)
        monkeypatch.delenv(BACKEND_ENV)
        reference = _execute_batch(batch)
        for ref, got in zip(reference, outcomes):
            assert metrics_fingerprint(ref[1]) == metrics_fingerprint(got[1])

    def test_error_isolation_survives_grouping(self, monkeypatch):
        bad = SimJob.make("simulate", workload="NO-SUCH-APP",
                          gpu="Tesla K40", scheme="BSL", scale=0.3,
                          seed=0, warmups=1)
        batch = [simulate_job("NN", "BSL"), bad, simulate_job("NN", "RD")]
        monkeypatch.setenv(BACKEND_ENV, "batched")
        outcomes = _execute_batch(batch)
        assert [o[0] for o in outcomes] == ["ok", "error", "ok"]
