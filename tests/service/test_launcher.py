"""Launcher tests: the real ``python -m repro.service`` process.

One subprocess boot is slow (~1s) so the lifecycle test does the whole
journey at once: boot on an ephemeral port, parse the banner, serve a
request, SIGTERM, assert the graceful-drain exit.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.service.client import ServiceClient


def launch(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--port", "0", "--workers", "0", *extra],
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def read_banner_port(process, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if match:
            return int(match.group(1))
    pytest.fail("launcher never printed its listening banner")


class TestVersionFlag:
    def test_version_prints_both_versions(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.service", "--version"],
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True, text=True, timeout=60)
        assert out.returncode == 0
        from repro.engine.job import ENGINE_VERSION
        assert repro.__version__ in out.stdout
        assert f"engine schema {ENGINE_VERSION}" in out.stdout


class TestDaemonLifecycle:
    def test_boot_serve_sigterm_drain(self, tmp_path):
        profile_path = tmp_path / "service_profile.json"
        process = launch(tmp_path, "--profile", str(profile_path))
        try:
            port = read_banner_port(process)
            client = ServiceClient(port=port, timeout=60.0)
            assert client.healthz()
            assert client.readyz()
            served = client.simulate("NN", "GTX980", scale=0.2, full=True)
            assert served["source"] == "executed"
            client.close()
            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(timeout=30)
            output = process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert exit_code == 0, output
        assert "[drained:" in output
        assert "1 executed" in output

        from repro.obs import validate_profile
        import json
        summary = json.loads(profile_path.read_text())
        validate_profile(summary)
        assert summary["job_spans"] == 1


class TestSpawnShardDeadline:
    """A child shard that wedges before printing its listening line
    must fail router startup with a clear error — never block the
    launcher forever on a stdout read."""

    def test_wedged_child_is_killed_and_raises(self, monkeypatch):
        import repro.service.__main__ as launcher

        read_fd, write_fd = os.pipe()
        events = []

        class WedgedProcess:
            # Holds its stdout open but never prints: the exact shape
            # of a child stuck on cache-dir I/O before binding.
            stdout = os.fdopen(read_fd, "r")
            returncode = None

            def kill(self):
                events.append("kill")
                os.close(write_fd)  # EOF lets the pump thread exit

            def wait(self, timeout=None):
                events.append("wait")
                self.returncode = -9
                return self.returncode

        monkeypatch.setattr(launcher.subprocess, "Popen",
                            lambda *a, **k: WedgedProcess())
        monkeypatch.setattr(launcher, "SPAWN_TIMEOUT_S", 0.2)
        args = launcher.build_parser().parse_args(
            ["--router", "--spawn-shards", "1"])
        started = time.monotonic()
        with pytest.raises(RuntimeError,
                           match="did not report a listening address"):
            launcher._spawn_shard(0, args)
        assert time.monotonic() - started < 5.0
        assert events == ["kill", "wait"]

    def test_child_death_before_banner_still_raises(self, monkeypatch):
        import repro.service.__main__ as launcher

        read_fd, write_fd = os.pipe()
        os.close(write_fd)  # immediate EOF: the child died silently

        class DeadProcess:
            stdout = os.fdopen(read_fd, "r")
            returncode = 1

            def wait(self, timeout=None):
                return self.returncode

        monkeypatch.setattr(launcher.subprocess, "Popen",
                            lambda *a, **k: DeadProcess())
        args = launcher.build_parser().parse_args(
            ["--router", "--spawn-shards", "1"])
        with pytest.raises(RuntimeError, match="exited \\(status 1\\)"):
            launcher._spawn_shard(0, args)
