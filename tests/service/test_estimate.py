"""The ``/v1/estimate`` fast path: envelope parity with
``/v1/simulate``, pool avoidance, caching, and error shapes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.gpu.analytic import estimate as analytic_estimate
from repro.gpu.config import PLATFORMS
from repro.service.client import ServiceError
from repro.workloads.registry import workload

EST = {"workload": "NN", "gpu": "GTX980", "scale": 0.2, "seed": 7}


class TestEnvelope:
    def test_envelope_matches_simulate_shape(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        sim = client.simulate("NN", "GTX980", scale=0.2, seed=7, full=True)
        est = client.estimate("NN", "GTX980", scale=0.2, seed=7, full=True)
        assert set(est) == set(sim) == {"key", "source", "result"}
        assert est["source"] == "executed"
        assert est["key"] != sim["key"]  # different job kinds

    def test_result_is_the_analytic_estimate(self, service_factory):
        service = service_factory(workers=0, cache=False)
        result = service.client().estimate("NN", "GTX980", scheme="CLU",
                                           scale=0.2, seed=7)
        gpu = PLATFORMS["GTX980"]
        kernel = workload("NN").kernel(scale=0.2, config=gpu)
        from repro.api import cluster
        local = analytic_estimate(gpu, kernel,
                                  cluster(kernel, "CLU", gpu=gpu, seed=7))
        expected = dataclasses.asdict(local)
        expected["sm_cycles"] = list(expected["sm_cycles"])  # JSON round-trip
        assert result == expected
        assert result["fidelity"] == "analytic"

    def test_error_shapes_match_simulate(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        for path_kwargs in ({"workload": "NOPE"}, {"gpu": "NOPE"}):
            with pytest.raises(ServiceError) as sim_err:
                client.simulate(**{**EST, **path_kwargs})
            with pytest.raises(ServiceError) as est_err:
                client.estimate(**{**EST, **path_kwargs})
            assert est_err.value.status == sim_err.value.status == 400
            assert est_err.value.code == sim_err.value.code


class TestPoolAvoidance:
    def test_estimates_never_touch_the_pool(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        client.estimate(**EST)
        client.estimate(**{**EST, "scheme": "CLU"})
        snapshot = client.metrics()
        estimates = snapshot["estimates"]
        assert estimates["count"] == 2
        assert estimates["cache_hits"] == 0
        assert estimates["mean_latency_ms"] >= 0.0
        # No batch ever formed and no flight was enqueued: the rung-0
        # path answers inline on the event-loop side.
        assert snapshot["batches"]["count"] == 0

    def test_metrics_section_shape(self, service_factory):
        service = service_factory(workers=0, cache=False)
        snapshot = service.client().metrics()
        assert snapshot["estimates"] == {
            "count": 0, "cache_hits": 0, "mean_latency_ms": 0.0}


class TestCaching:
    def test_repeat_hits_the_result_cache(self, service_factory, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "estcache"))
        service = service_factory(workers=0, cache=True)
        client = service.client()
        first = client.estimate(**EST, full=True)
        second = client.estimate(**EST, full=True)
        assert first["source"] == "executed"
        assert second["source"] == "cache"
        assert second["result"] == first["result"]
        assert client.metrics()["estimates"]["cache_hits"] == 1

    def test_draining_rejects_estimates(self, service_factory):
        service = service_factory(workers=0, cache=False)
        service.service._draining = True  # white-box: drain flag only
        with pytest.raises(ServiceError) as err:
            service.client().estimate(**EST)
        assert err.value.status == 503
