"""Property-based tests for the consistent-hash ring.

The ring is the routing tier's correctness keystone: every guarantee
the sharded service makes (exactly-once execution cluster-wide,
disjoint cache slices, affordable warmup) reduces to three ring
properties — deterministic placement, bounded imbalance, and minimal
remapping on membership change.  Hypothesis searches for node-name
sets and key populations that break them.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.ring import HashRing, ring_hash

#: Node names: short, printable, unique — what launchers generate.
node_names = st.sets(
    st.text(alphabet=string.ascii_lowercase + string.digits + "-",
            min_size=1, max_size=12),
    min_size=2, max_size=6)

keys = st.text(alphabet=string.hexdigits.lower(), min_size=8, max_size=64)


@settings(max_examples=50, deadline=None)
@given(nodes=node_names, key=keys)
def test_routing_is_deterministic_across_instances(nodes, key):
    """Two rings with the same membership agree on every owner list —
    regardless of construction order (constructor vs incremental adds,
    different insertion orders)."""
    constructed = HashRing(sorted(nodes))
    incremental = HashRing()
    for node in reversed(sorted(nodes)):
        incremental.add(node)
    for count in (1, 2, len(nodes)):
        assert constructed.owners(key, count) \
            == incremental.owners(key, count)


@settings(max_examples=50, deadline=None)
@given(nodes=node_names, key=keys,
       replication=st.integers(min_value=1, max_value=6))
def test_replica_sets_are_distinct_and_prefix_stable(nodes, key,
                                                     replication):
    """Owners are distinct nodes, primary-first, and growing the
    replica count only *extends* the set (a failover chain computed
    with replication=2 is a prefix of the replication=3 chain)."""
    ring = HashRing(nodes)
    owners = ring.owners(key, replication)
    assert len(owners) == min(replication, len(nodes))
    assert len(set(owners)) == len(owners)
    assert all(owner in ring for owner in owners)
    wider = ring.owners(key, replication + 1)
    assert wider[:len(owners)] == owners
    assert ring.primary(key) == owners[0]


@settings(max_examples=20, deadline=None)
@given(nodes=node_names, seed=st.integers(min_value=0, max_value=2**32))
def test_distribution_is_balanced(nodes, seed):
    """No node hogs the key space: with 64 vnodes each of N nodes
    primaries a bounded share of a large key population (the bound is
    loose — the property under test is "spread", not "perfect split")."""
    ring = HashRing(nodes)
    population = [f"key-{seed}-{i}" for i in range(512)]
    counts = ring.distribution(population)
    assert sum(counts.values()) == len(population)
    ideal = len(population) / len(nodes)
    assert max(counts.values()) <= 5 * ideal
    # Every node takes part in routing.
    assert all(count > 0 for count in counts.values())


@settings(max_examples=25, deadline=None)
@given(nodes=node_names, joiner=st.text(
    alphabet=string.ascii_lowercase, min_size=13, max_size=16),
    seed=st.integers(min_value=0, max_value=2**32))
def test_join_remaps_only_onto_the_joiner(nodes, joiner, seed):
    """Adding a node never moves a key between two *existing* nodes:
    any key whose primary changed must now be primaried by the
    joiner — the property that makes warmup transfer only the
    newcomer's slice."""
    ring = HashRing(nodes)
    population = [f"key-{seed}-{i}" for i in range(256)]
    before = {key: ring.primary(key) for key in population}
    ring.add(joiner)
    moved = 0
    for key in population:
        after = ring.primary(key)
        if after != before[key]:
            assert after == joiner
            moved += 1
    # ~1/(n+1) of the space moves; assert the minimal-remap *bound*.
    assert moved <= len(population) * 3 // (len(nodes) + 1)


@settings(max_examples=25, deadline=None)
@given(nodes=node_names, seed=st.integers(min_value=0, max_value=2**32))
def test_leave_remaps_only_the_leavers_keys(nodes, seed):
    """Removing a node only re-homes the keys it primaried; everyone
    else's placement is untouched (and removal exactly undoes an
    add)."""
    ring = HashRing(nodes)
    leaver = ring.nodes[0]
    population = [f"key-{seed}-{i}" for i in range(256)]
    before = {key: ring.primary(key) for key in population}
    ring.remove(leaver)
    for key in population:
        if before[key] != leaver:
            assert ring.primary(key) == before[key]
        else:
            assert ring.primary(key) != leaver
    # Re-adding restores the exact original placement.
    ring.add(leaver)
    assert {key: ring.primary(key) for key in population} == before


def test_ring_hash_is_stable():
    """The ring function is pinned: repositioning every key between
    releases would silently invalidate every deployed cache slice."""
    assert ring_hash("repro") == int.from_bytes(
        __import__("hashlib").sha256(b"repro").digest()[:8], "big")


def test_empty_and_single_node_edges():
    ring = HashRing()
    assert ring.owners("anything", 3) == []
    assert ring.primary("anything") is None
    ring.add("only")
    assert ring.owners("anything", 3) == ["only"]
    ring.remove("only")
    ring.remove("only")  # idempotent
    assert len(ring) == 0
