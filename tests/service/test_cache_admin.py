"""Authorization tests for the ``/v1/cache/*`` admin plane.

These endpoints move raw pickled cache entries between cluster
members, so they are not part of the public serving surface: with a
``cache_token`` configured every request must present it, without one
they answer only on a loopback bind, and a pushed payload must
unpickle under the engine's result-record allowlist — a crafted
reduce-gadget pickle is rejected per-key, never installed.
"""

import base64
import pickle

import pytest

from repro.engine import simulate_job
from repro.service.client import ServiceError
from repro.service.embed import EmbeddedCluster, EmbeddedService

TOKEN = "warmup-secret"


def push_payload(key: str, data: bytes) -> dict:
    return {"entries": [{"key": key,
                         "data": base64.b64encode(data).decode("ascii")}]}


class _Exec:
    def __reduce__(self):
        import os
        return (os.system, ("true",))


@pytest.fixture
def job():
    return simulate_job("NN", "GTX980", scale=0.2)


class TestTokenGate:
    def test_without_token_all_cache_endpoints_answer_403(self, tmp_path,
                                                          job):
        with EmbeddedService(workers=0, cache=True,
                             cache_root=str(tmp_path / "c"),
                             cache_token=TOKEN) as service:
            with service.client() as client:
                client.cache_token = None
                for method, path in [
                        ("GET", "/v1/cache/manifest"),
                        ("GET", f"/v1/cache/entry?key={job.key}"),
                        ("POST", "/v1/cache/push")]:
                    payload = push_payload(job.key, pickle.dumps({})) \
                        if method == "POST" else None
                    with pytest.raises(ServiceError) as excinfo:
                        client._call(method, path, payload)
                    assert excinfo.value.status == 403
                    assert excinfo.value.code == "bad_cache_token"

    def test_wrong_token_is_403_and_serving_endpoints_unaffected(
            self, tmp_path):
        with EmbeddedService(workers=0, cache=True,
                             cache_root=str(tmp_path / "c"),
                             cache_token=TOKEN) as service:
            with service.client() as client:
                client.cache_token = "guess"
                with pytest.raises(ServiceError) as excinfo:
                    client._call("GET", "/v1/cache/manifest")
                assert excinfo.value.status == 403
                assert client.healthz()
                assert client.readyz()

    def test_with_token_transfer_roundtrip_works(self, tmp_path, job):
        with EmbeddedService(workers=0, cache=True,
                             cache_root=str(tmp_path / "c"),
                             cache_token=TOKEN) as service:
            # Seed an entry through the serving path, then move it
            # through the admin plane with the token attached.
            with service.client() as client:
                client.simulate("NN", "GTX980", scale=0.2)
                manifest = client._call("GET", "/v1/cache/manifest")
                assert job.key in manifest["keys"]
                entry = client._call("GET",
                                     f"/v1/cache/entry?key={job.key}")
                pushed = client._call(
                    "POST", "/v1/cache/push",
                    {"entries": [{"key": entry["key"],
                                  "data": entry["data"]}]})
                assert pushed == {"imported": 1, "rejected": []}

    def test_nonloopback_bind_without_token_disables_cache_admin(
            self, tmp_path):
        with EmbeddedService(workers=0, cache=True,
                             cache_root=str(tmp_path / "c"),
                             host="0.0.0.0") as service:
            with service.client() as client:
                with pytest.raises(ServiceError) as excinfo:
                    client._call("GET", "/v1/cache/manifest")
                assert excinfo.value.status == 403
                assert excinfo.value.code == "cache_admin_disabled"
                assert client.healthz()


class TestPushPayloadSafety:
    def test_reduce_gadget_push_is_rejected_per_key(self, tmp_path, job):
        with EmbeddedService(workers=0, cache=True,
                             cache_root=str(tmp_path / "c")) as service:
            with service.client() as client:
                answer = client._call(
                    "POST", "/v1/cache/push",
                    push_payload(job.key, pickle.dumps(_Exec())))
                assert answer["imported"] == 0
                assert answer["rejected"] == [job.key]
                # Nothing was installed: the key is absent from the
                # manifest and a lookup would miss.
                manifest = client._call("GET", "/v1/cache/manifest")
                assert job.key not in manifest["keys"]


class TestClusterWithToken:
    def test_warmup_and_join_work_end_to_end(self, tmp_path):
        """The router presents the token on every manifest/entry/push
        round trip, so join-warmup moves entries exactly as it does
        untokened."""
        with EmbeddedCluster(shards=2, replication=1, vnodes=16,
                             cache_root=str(tmp_path / "cluster"),
                             cache_token=TOKEN) as cluster:
            with cluster.client() as client:
                for seed in range(4):
                    client.simulate("NN", "GTX980", scale=0.2, seed=seed)
            index = cluster.add_shard(warm=True)
            router = cluster.router.router
            expected = {
                key for shard in range(index)
                for key in cluster.shard_client(shard)._call(
                    "GET", "/v1/cache/manifest")["keys"]
                if f"shard-{index}" in router.ring.owners(
                    key, router.config.replication)}
            with cluster.shard_client(index) as joiner:
                manifest = joiner._call("GET", "/v1/cache/manifest")
            assert expected <= set(manifest["keys"])
