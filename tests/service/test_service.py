"""End-to-end service tests over a real listening socket.

Every test talks HTTP to an :class:`~repro.service.embed.EmbeddedService`
through the stdlib client.  Determinism tricks:

* ``workers=0`` runs simulations on one in-process worker thread, so
  ``repro.service.core._execute_batch`` is monkeypatchable — tests gate
  it on a :class:`threading.Event` to freeze "a job is executing"
  states instead of sleeping;
* the event loop stays responsive while a job is frozen (that is the
  point of the offload), so ``/metrics`` polls observe intermediate
  states exactly.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.service.core as core
from repro.api import simulate
from repro.gpu.metrics import canonical_metrics
from repro.service.client import ServiceClient, ServiceError

SIM = {"workload": "NN", "gpu": "GTX980", "scale": 0.2, "seed": 7}


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class GatedExecutor:
    """Wrap the real batch executor behind a release gate + counter."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0
        self.jobs_seen = 0
        self._real = core._execute_batch

    def __call__(self, batch):
        self.calls += 1
        self.jobs_seen += len(batch)
        assert self.release.wait(timeout=30.0), "gate never released"
        return self._real(batch)


@pytest.fixture
def gate(monkeypatch):
    gated = GatedExecutor()
    monkeypatch.setattr(core, "_execute_batch", gated)
    yield gated
    gated.release.set()  # never leave a worker thread frozen


class TestLifecycle:
    def test_start_ready_drain_exit(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        assert client.healthz()
        assert client.readyz()
        assert client.simulate("NN", "GTX980", scale=0.2)["scheme"] == "BSL"
        client.close()
        port = service.port
        service.stop()
        fresh = ServiceClient(port=port, timeout=2.0)
        with pytest.raises(OSError):
            fresh._request("GET", "/healthz")

    def test_draining_flips_readyz_and_rejects_work(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        service.service._draining = True  # white-box: drain flag only
        try:
            assert client.healthz()        # liveness stays green
            assert not client.readyz()     # readiness goes red
            with pytest.raises(ServiceError) as excinfo:
                client.simulate("NN", "GTX980", scale=0.2)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "draining"
        finally:
            service.service._draining = False
        client.close()

    def test_index_lists_endpoints(self, service_factory):
        service = service_factory(workers=0, cache=False)
        document = service.client()._call("GET", "/")
        assert "POST /v1/simulate" in document["endpoints"]


class TestSingleFlightDedup:
    def test_16_concurrent_identical_requests_execute_once(
            self, service_factory, gate):
        """The acceptance-criteria proof: N identical concurrent
        requests cause exactly one underlying simulator execution and
        all N responses are bit-identical to the direct facade call."""
        service = service_factory(workers=0, cache=False)
        results, errors = [], []

        def hit():
            client = service.client()
            try:
                results.append(client.simulate(full=True, **SIM))
            except Exception as exc:  # surfaced via the errors list
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=hit) for _ in range(16)]
        for thread in threads:
            thread.start()
        # Hold the gate until every request has reached the pipeline,
        # so each one must resolve through dedup, not the cache.
        poll = service.client()
        assert wait_until(
            lambda: poll.metrics()["jobs"]["submitted"] == 16)
        gate.release.set()
        for thread in threads:
            thread.join(timeout=30.0)

        assert not errors
        assert gate.calls == 1, "more than one batch executed"
        assert gate.jobs_seen == 1, "more than one simulator execution"
        direct = canonical_metrics(
            simulate("NN", "GTX980", scale=0.2, seed=7))
        assert all(entry["result"] == direct for entry in results)
        metrics = poll.metrics()
        assert metrics["jobs"]["executed"] == 1
        assert metrics["jobs"]["dedup_hits"] == 15
        assert metrics["jobs"]["dedup_hit_ratio"] == pytest.approx(15 / 16)
        poll.close()

    def test_within_sweep_dedup(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        entries = client.sweep([SIM, dict(SIM)])
        assert entries[0]["key"] == entries[1]["key"]
        assert sorted(e["source"] for e in entries) == ["executed",
                                                        "inflight"]
        assert entries[0]["result"] == entries[1]["result"]
        client.close()


class TestResultCache:
    def test_cache_survives_restart(self, service_factory):
        first = service_factory(workers=0, cache=True)
        served = first.client().simulate(full=True, **SIM)
        assert served["source"] == "executed"
        first.stop()
        second = service_factory(workers=0, cache=True)
        again = second.client().simulate(full=True, **SIM)
        assert again["source"] == "cache"
        assert again["result"] == served["result"]

    def test_repeat_request_hits_cache(self, service_factory):
        service = service_factory(workers=0, cache=True)
        client = service.client()
        assert client.simulate(full=True, **SIM)["source"] == "executed"
        assert client.simulate(full=True, **SIM)["source"] == "cache"
        snapshot = client.metrics()
        assert snapshot["jobs"]["cache_hits"] == 1
        assert snapshot["result_cache"]["writes"] == 1
        client.close()


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(
            self, service_factory, gate):
        service = service_factory(workers=0, cache=False, queue_depth=1)
        blocked_result = []
        blocker = threading.Thread(
            target=lambda: blocked_result.append(
                service.client().simulate(**SIM)))
        blocker.start()
        poll = service.client()
        assert wait_until(
            lambda: poll.metrics()["queue"]["depth"] == 1)

        with pytest.raises(ServiceError) as excinfo:
            poll.simulate("NN", "GTX980", scale=0.2, seed=99)
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.retry_after_s >= 1

        gate.release.set()
        blocker.join(timeout=30.0)
        assert blocked_result, "blocked request never completed"
        snapshot = poll.metrics()
        assert snapshot["requests"]["rejected_queue_full"] == 1
        assert snapshot["queue"]["peak"] == 1
        poll.close()

    def test_oversweep_rejected_up_front(self, service_factory, gate):
        service = service_factory(workers=0, cache=False, queue_depth=2)
        client = service.client()
        jobs = [dict(SIM, seed=n) for n in range(3)]
        with pytest.raises(ServiceError) as excinfo:
            client.sweep(jobs)
        assert excinfo.value.status == 429
        # Nothing half-admitted: the queue is still empty.
        assert client.metrics()["queue"]["depth"] == 0
        client.close()


class TestDeadlines:
    def test_deadline_expiry_is_504(self, service_factory, gate):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(deadline_s=0.1, **SIM)
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline_exceeded"
        assert client.metrics()["jobs"]["deadline_expired"] == 1
        client.close()

    def test_unstarted_job_is_cancelled_cooperatively(
            self, service_factory, gate):
        # A wide batch window keeps the flight in batch assembly past
        # its deadline; with no waiters left it must be dropped before
        # the pool ever sees it.
        service = service_factory(workers=0, cache=False,
                                  batch_window_s=0.6, batch_max=4)
        client = service.client()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(deadline_s=0.05, **SIM)
        assert excinfo.value.status == 504
        gate.release.set()
        assert wait_until(
            lambda: client.metrics()["jobs"]["cancelled"] == 1)
        snapshot = client.metrics()
        assert snapshot["jobs"]["executed"] == 0
        assert snapshot["queue"]["depth"] == 0
        assert gate.jobs_seen == 0
        client.close()

    def test_request_deadline_capped_by_config(self, service_factory):
        service = service_factory(workers=0, cache=False, deadline_s=5.0)
        client = service.client()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(deadline_s=-3, **SIM)
        assert excinfo.value.status == 400
        client.close()


class TestWorkerCrashRecovery:
    def test_broken_pool_retries_once_then_succeeds(
            self, service_factory, monkeypatch):
        real = core._execute_batch
        state = {"calls": 0}

        def flaky(batch):
            state["calls"] += 1
            if state["calls"] == 1:
                from concurrent.futures import BrokenExecutor
                raise BrokenExecutor("worker died")
            return real(batch)

        monkeypatch.setattr(core, "_execute_batch", flaky)
        service = service_factory(workers=0, cache=False)
        client = service.client()
        served = client.simulate(full=True, **SIM)
        assert served["source"] == "executed"
        snapshot = client.metrics()
        assert snapshot["jobs"]["worker_crashes"] == 1
        assert snapshot["jobs"]["retries"] == 1
        client.close()

    def test_double_crash_is_structured_500(self, service_factory,
                                            monkeypatch):
        def always_broken(batch):
            from concurrent.futures import BrokenExecutor
            raise BrokenExecutor("worker died again")

        monkeypatch.setattr(core, "_execute_batch", always_broken)
        service = service_factory(workers=0, cache=False)
        client = service.client()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(**SIM)
        assert excinfo.value.status == 500
        assert excinfo.value.code == "job_failed"
        assert "crashed twice" in str(excinfo.value)
        client.close()


class TestErrors:
    def test_unknown_workload_is_400(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("NOPE", "GTX980")
        assert excinfo.value.status == 400
        assert "known" in str(excinfo.value)
        client.close()

    def test_unknown_path_is_404(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        status, payload = client._request("GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        client.close()

    def test_wrong_method_is_405(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        status, payload = client._request("GET", "/v1/simulate")
        assert status == 405
        client.close()

    def test_bad_json_is_400(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        connection = client._connect()
        connection.request("POST", "/v1/simulate", body=b"{{{",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        assert response.status == 400
        response.read()
        client.close()

    def test_executor_failure_is_structured_500(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        with pytest.raises(ServiceError) as excinfo:
            # `reuse` with no workload passes shape validation but the
            # executor cannot resolve it — the structured-500 path.
            client.sweep([{"kind": "reuse"}])
        assert excinfo.value.status == 500
        assert excinfo.value.code == "job_failed"
        client.close()


class TestBitIdentityAcrossProcessPool:
    def test_served_equals_direct_with_real_workers(self, service_factory):
        """Same check as the dedup test but across a genuine
        ProcessPoolExecutor boundary (pickle round-trip included)."""
        service = service_factory(workers=1, cache=False)
        client = service.client()
        served = client.simulate("BS", "Tesla K40", scale=0.2, seed=1)
        direct = canonical_metrics(
            simulate("BS", "Tesla K40", scale=0.2, seed=1))
        assert served == direct
        client.close()


class TestProfileIntegration:
    def test_job_spans_and_phases_recorded(self, service_factory):
        from repro.obs import ProfileSession, validate_profile
        profile = ProfileSession(label="service-test")
        service = service_factory(workers=0, cache=False, profile=profile)
        client = service.client()
        client.simulate(**SIM)
        client.simulate(**dict(SIM, seed=8))
        service.stop()
        assert len(profile.job_spans) == 2
        assert profile.cells, "served metrics were not observed"
        validate_profile(profile.summary())

    def test_metrics_expose_phase_seconds(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        client.simulate(**SIM)
        phases = client.metrics()["phase_seconds"]
        assert "execute" in phases
        assert "queue_wait" in phases
        client.close()


class TestTuneEndpoint:
    TUNE = dict(workload="NN", gpu="Tesla K40", strategy="hillclimb",
                budget=6, scale=0.3, seed=0)

    def test_served_tune_equals_in_process_record(self, service_factory,
                                                  tmp_path, monkeypatch):
        """Acceptance: POST /v1/tune serves the identical result record
        (modulo JSON) as repro.api.tune in-process."""
        import json

        from repro.api import tune
        from repro.service.jobs import jsonable

        # Server workers and the in-process tune share one cache root,
        # like production: candidate evaluations hit the shared cache.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        client = service_factory(workers=0, cache=False).client()
        served = client.tune(**self.TUNE)
        direct = jsonable(tune(**self.TUNE).record())
        assert json.dumps(served, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)
        assert served["best"]["score"] <= served["baseline"]["score"]
        client.close()

    def test_repeat_tune_hits_result_cache(self, service_factory):
        service = service_factory(workers=0, cache=True)
        client = service.client()
        first = client.tune(**self.TUNE, full=True)
        second = client.tune(**self.TUNE, full=True)
        assert first["key"] == second["key"]
        assert second["source"] == "cache"
        assert second["result"] == first["result"]
        client.close()

    def test_unknown_strategy_is_400(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        with pytest.raises(ServiceError) as excinfo:
            client.tune("NN", "Tesla K40", strategy="annealing")
        assert excinfo.value.status == 400
        assert "known" in str(excinfo.value)
        client.close()

    def test_unknown_objective_is_400(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        with pytest.raises(ServiceError) as excinfo:
            client.tune("NN", "Tesla K40", objective="watts")
        assert excinfo.value.status == 400
        client.close()

    def test_budget_over_config_cap_is_400(self, service_factory):
        service = service_factory(workers=0, cache=False,
                                  max_tune_budget=8)
        client = service.client()
        with pytest.raises(ServiceError) as excinfo:
            client.tune("NN", "Tesla K40", budget=9)
        assert excinfo.value.status == 400
        assert "budget" in str(excinfo.value)
        client.close()

    def test_unknown_workload_is_400(self, service_factory):
        client = service_factory(workers=0, cache=False).client()
        with pytest.raises(ServiceError) as excinfo:
            client.tune("NOPE", "Tesla K40")
        assert excinfo.value.status == 400
        client.close()
