"""Fault-injection harness for the sharded serving tier.

Every test boots a real :class:`~repro.service.embed.EmbeddedCluster`
(N shards + router, each on its own event loop and socket) and then
injects the failure a production cluster actually sees — a shard
dying mid-flight — via :meth:`EmbeddedService.kill`, which aborts the
shard's listener and resets its live connections exactly the way
SIGKILL does, without sacrificing the host process.

The contract under test: with ``replication >= 2`` a single shard
death is *invisible to clients* — the router retries onto a replica,
every response stays bit-identical, and the only evidence is the
router's own failover counters.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.client import ServiceError
from repro.service.embed import EmbeddedCluster

SIM = {"workload": "NN", "gpu": "GTX980", "scale": 0.2, "seed": 7}


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def primary_index(cluster: EmbeddedCluster) -> int:
    """Which shard the cluster routed SIM to (it has routed > 0)."""
    with cluster.client() as client:
        shards = client.metrics()["shards"]
    routed = [name for name, info in shards.items() if info["routed"] > 0]
    assert len(routed) == 1, f"expected one routed shard, got {routed}"
    return int(routed[0].rsplit("-", 1)[1])


@pytest.fixture
def cluster():
    with EmbeddedCluster(shards=2, replication=2, hot_key_threshold=1,
                         dead_retry_s=0.1, workers=0) as running:
        yield running


def test_kill_primary_failover_is_bit_identical(cluster):
    """Kill the primary after its result replicated; the very next
    request must succeed through the replica with the same bytes."""
    with cluster.client() as client:
        baseline = client.simulate(**SIM)
        # hot_key_threshold=1 promotes the key immediately; wait for
        # the background push to land on the standby replica.
        assert wait_until(lambda: client.metrics()["routing"]
                          ["replicated_entries"] >= 1), \
            "hot-key replication never happened"
        cluster.kill_shard(primary_index(cluster))
        assert client.simulate(**SIM) == baseline
        metrics = client.metrics()
    assert metrics["routing"]["failovers"] >= 1
    assert metrics["routing"]["upstream_errors"] >= 1
    assert metrics["routing"]["all_replicas_failed"] == 0


def test_kill_under_load_zero_client_errors(cluster):
    """The satellite contract: SIGKILL one shard while a client storm
    is mid-flight; not a single request may fail."""
    with cluster.client() as client:
        baseline = client.simulate(**SIM)
        assert wait_until(lambda: client.metrics()["routing"]
                          ["replicated_entries"] >= 1)
        victim = primary_index(cluster)

    errors: "list[BaseException]" = []
    results: "list[dict]" = []
    stop = threading.Event()

    def storm():
        with cluster.client() as client:
            while not stop.is_set():
                try:
                    results.append(client.simulate(**SIM))
                except BaseException as exc:
                    errors.append(exc)

    threads = [threading.Thread(target=storm, daemon=True)
               for _ in range(4)]
    for thread in threads:
        thread.start()
    assert wait_until(lambda: len(results) >= 8), "storm never got going"
    cluster.kill_shard(victim)          # mid-flight, by construction
    assert wait_until(lambda: len(results) >= len(threads) * 2 + 16)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)

    assert not errors, f"client-visible failures: {errors[:3]}"
    assert results and all(result == baseline for result in results)
    with cluster.client() as client:
        metrics = client.metrics()
    # The router recorded the failover; the survivor won the traffic.
    assert metrics["routing"]["failovers"] >= 1
    assert metrics["routing"]["all_replicas_failed"] == 0
    survivor = f"shard-{1 - victim}"
    assert metrics["shards"][survivor]["failover_wins"] >= 1


def test_all_replicas_dead_surfaces_502(cluster):
    """When every replica is gone the router answers a structured 502
    (all_replicas_failed) instead of hanging or crashing."""
    with cluster.client() as client:
        client.simulate(**SIM)
        cluster.kill_shard(0)
        cluster.kill_shard(1)
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(**SIM)
        assert excinfo.value.status == 502
        assert excinfo.value.code == "all_replicas_failed"
        # And readiness reflects it: no shard is ready.
        assert not client.readyz()


def test_dead_shard_recovers_after_dead_retry(cluster):
    """The lazy circuit breaker un-marks a shard that answers again:
    kill the primary, fail over, and confirm the ring keeps serving
    with the survivor counted alive."""
    with cluster.client() as client:
        baseline = client.simulate(**SIM)
        assert wait_until(lambda: client.metrics()["routing"]
                          ["replicated_entries"] >= 1)
        cluster.kill_shard(primary_index(cluster))
        for _ in range(3):
            assert client.simulate(**SIM) == baseline
            time.sleep(0.15)  # beyond dead_retry_s: probes the corpse
        metrics = client.metrics()
    states = {info["state"] for info in metrics["shards"].values()}
    assert "alive" in states  # the survivor keeps serving
    assert metrics["routing"]["all_replicas_failed"] == 0
