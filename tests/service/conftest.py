"""Service-test fixtures: isolated caches, embedded servers."""

from __future__ import annotations

import pytest

from repro.service.embed import EmbeddedService


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every service test gets its own empty persistent-cache root."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture
def service_factory():
    """Start embedded services that are always drained at teardown."""
    running = []

    def start(**overrides) -> EmbeddedService:
        service = EmbeddedService(**overrides).start()
        running.append(service)
        return service

    yield start
    for service in running:
        service.stop()
