"""``POST /v1/bound`` and ``POST /v1/cotenant``: envelopes, pool
behaviour, caching, validation, sweep integration."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceError

BOUND = {"workload": "NN", "gpu": "GTX980", "scale": 0.2}
TENANTS = [{"workload": "NN", "scale": 0.2},
           {"workload": "HS", "scale": 0.2}]


class TestBoundEndpoint:
    def test_envelope_and_result_shape(self, service_factory):
        service = service_factory(workers=0, cache=False)
        envelope = service.client().bound(**BOUND, full=True)
        assert set(envelope) == {"key", "source", "result"}
        assert envelope["source"] == "executed"
        result = envelope["result"]
        assert result["kernel_name"] == "NN"
        assert result["gpu_name"] == "GTX980"
        assert 0.0 <= result["bound_hit_rate"] <= 1.0
        assert 0.0 <= result["bound_l2_hit_rate"] <= 1.0
        assert result["l1_distinct_lines"] > 0

    def test_pool_free_and_metered(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        client.bound(**BOUND)
        client.bound(workload="HS", gpu="GTX980", scale=0.2)
        snapshot = client.metrics()
        assert snapshot["bounds"]["count"] == 2
        assert snapshot["bounds"]["cache_hits"] == 0
        assert snapshot["batches"]["count"] == 0  # never pooled

    def test_repeat_hits_the_result_cache(self, service_factory,
                                          tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bcache"))
        service = service_factory(workers=0, cache=True)
        client = service.client()
        first = client.bound(**BOUND, full=True)
        second = client.bound(**BOUND, full=True)
        assert first["source"] == "executed"
        assert second["source"] == "cache"
        assert second["result"] == first["result"]
        assert client.metrics()["bounds"]["cache_hits"] == 1

    def test_validation_matches_estimate_shapes(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        for bad in ({**BOUND, "workload": "NOPE"},
                    {**BOUND, "gpu": "NOPE"},
                    {**BOUND, "scale": -1.0}):
            with pytest.raises(ServiceError) as err:
                client.bound(**bad)
            assert err.value.status == 400


class TestCotenantEndpoint:
    def test_result_carries_tenants_and_oracle(self, service_factory):
        service = service_factory(workers=0, cache=False)
        result = service.client().cotenant(TENANTS, "GTX980",
                                           warmups=0)
        assert result["policy"] == "shared"
        assert len(result["tenants"]) == 2
        for tenant in result["tenants"]:
            assert tenant["l1_hit_rate"] \
                <= tenant["bound_hit_rate"] + 1e-9
            assert tenant["slowdown"] > 0
        assert result["unfairness"] >= 1.0
        assert len(result["bounds"]) == 2

    def test_validation_errors(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        cases = [
            ({"tenants": [], "gpu": "GTX980"}, "non-empty"),
            ({"tenants": TENANTS, "gpu": "GTX980",
              "policy": "mystery"}, "policy"),
            ({"tenants": [{"workload": "NN", "scheme": "PFH+TOT"}],
              "gpu": "GTX980"}, "unknown tenant scheme"),
            ({"tenants": [{"workload": "NOPE"}], "gpu": "GTX980"},
             "workload"),
        ]
        for payload, needle in cases:
            with pytest.raises(ServiceError) as err:
                client.cotenant(payload["tenants"], payload["gpu"],
                                policy=payload.get("policy", "shared"),
                                warmups=0)
            assert err.value.status == 400
            assert needle in str(err.value).lower()


class TestSweepIntegration:
    def test_sweep_mixes_bound_and_cotenant_kinds(self, service_factory):
        service = service_factory(workers=0, cache=False)
        client = service.client()
        entries = [
            {"kind": "bound", **BOUND},
            {"kind": "cotenant", "tenants": TENANTS, "gpu": "GTX980",
             "warmups": 0},
        ]
        results = client.sweep(entries)
        assert len(results) == 2
        assert "bound_hit_rate" in results[0]["result"]
        assert "tenants" in results[1]["result"]
