"""Request canonicalization: JSON -> SimJob, results -> JSON."""

from __future__ import annotations

import json

import pytest

from repro.api import simulate
from repro.engine import execute
from repro.gpu.metrics import canonical_metrics
from repro.service.httpio import HttpError
from repro.service.jobs import (
    build_cluster_job,
    build_simulate_job,
    build_sweep_jobs,
    jsonable,
)


class TestSimulateJob:
    def test_identical_requests_share_one_key(self):
        # Different JSON spellings of the same computation must
        # canonicalize to one content hash — that key *is* the
        # single-flight dedup identity.
        a = build_simulate_job({"workload": "NN", "gpu": "GTX980"})
        b = build_simulate_job({"workload": "NN", "gpu": "GTX980",
                                "scale": 1, "seed": 0, "warmups": 1})
        assert a.key == b.key

    def test_different_seed_different_key(self):
        a = build_simulate_job({"workload": "NN", "gpu": "GTX980"})
        b = build_simulate_job({"workload": "NN", "gpu": "GTX980",
                                "seed": 1})
        assert a.key != b.key

    def test_executor_is_the_facade(self):
        job = build_simulate_job({"workload": "NN", "gpu": "GTX980",
                                  "scale": 0.2, "seed": 5})
        direct = simulate("NN", "GTX980", scale=0.2, seed=5)
        assert canonical_metrics(execute(job)) == canonical_metrics(direct)

    @pytest.mark.parametrize("payload, field", [
        ({"gpu": "GTX980"}, "workload"),
        ({"workload": "NN"}, "gpu"),
        ({"workload": "NOPE", "gpu": "GTX980"}, "workload"),
        ({"workload": "NN", "gpu": "GTX999"}, "gpu"),
        ({"workload": "NN", "gpu": "GTX980", "scheme": "WAT"}, "scheme"),
        ({"workload": "NN", "gpu": "GTX980", "scale": -1}, "scale"),
        ({"workload": "NN", "gpu": "GTX980", "scale": "big"}, "scale"),
        ({"workload": 7, "gpu": "GTX980"}, "workload"),
    ])
    def test_validation_is_a_400(self, payload, field):
        with pytest.raises(HttpError) as excinfo:
            build_simulate_job(payload)
        assert excinfo.value.status == 400
        assert field in excinfo.value.message


class TestClusterJob:
    def test_returns_plan_digest(self):
        job = build_cluster_job({"workload": "NN", "gpu": "GTX980",
                                 "scheme": "CLU", "direction": "Y-P"})
        digest = execute(job)
        assert digest["scheme"] == "CLU"
        assert digest["mode"] == "placed"
        assert digest["n_tasks"] == sum(digest["sm_task_counts"])
        json.dumps(digest)  # must be JSON-clean as-is

    def test_bad_direction_rejected(self):
        with pytest.raises(HttpError):
            build_cluster_job({"workload": "NN", "gpu": "GTX980",
                               "direction": "Z-P"})


class TestSweepJobs:
    def test_mixed_kinds(self):
        jobs = build_sweep_jobs({"jobs": [
            {"workload": "NN", "gpu": "GTX980", "scale": 0.2},
            {"kind": "cluster", "workload": "NN", "gpu": "GTX980"},
            {"kind": "table2", "workload": "NN"},
        ]}, max_jobs=16)
        assert [job.kind for job in jobs] == ["simulate", "cluster",
                                              "table2"]

    def test_over_limit_is_413(self):
        entries = [{"workload": "NN", "gpu": "GTX980"}] * 3
        with pytest.raises(HttpError) as excinfo:
            build_sweep_jobs({"jobs": entries}, max_jobs=2)
        assert excinfo.value.status == 413

    def test_bad_entry_names_its_index(self):
        with pytest.raises(HttpError) as excinfo:
            build_sweep_jobs({"jobs": [
                {"workload": "NN", "gpu": "GTX980"},
                {"workload": "NOPE", "gpu": "GTX980"},
            ]}, max_jobs=16)
        assert "jobs[1]" in excinfo.value.message

    def test_unknown_kind_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            build_sweep_jobs({"jobs": [{"kind": "teleport"}]}, max_jobs=4)
        assert "teleport" in excinfo.value.message

    def test_empty_list_rejected(self):
        with pytest.raises(HttpError):
            build_sweep_jobs({"jobs": []}, max_jobs=4)


class TestJsonable:
    def test_metrics_canonicalize(self):
        metrics = simulate("NN", "GTX980", scale=0.2)
        assert jsonable(metrics) == canonical_metrics(metrics)

    def test_scheme_results_recurse(self):
        from repro.experiments.schemes import run_all_schemes
        from repro.gpu.config import GTX980
        from repro.workloads.registry import workload
        results = run_all_schemes(workload("NN"), GTX980, scale=0.2,
                                  schemes=("BSL",))
        document = jsonable(results)
        json.dumps(document)
        assert document["metrics"]["BSL"]["scheme"] == "BSL"

    def test_opaque_objects_fall_back_to_repr(self):
        document = jsonable({"x": object()})
        assert isinstance(document["x"], str)
