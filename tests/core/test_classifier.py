"""Classifier tests (Section 4.4): category recovery from probes."""

import pytest

from repro.core.classifier import classify
from repro.gpu.config import TESLA_K40
from repro.kernels.kernel import LocalityCategory

from tests.conftest import make_row_band_kernel, make_streaming_kernel


class TestSyntheticKernels:
    def test_algorithm_kernel_classified_exploitable(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        report = classify(kernel, TESLA_K40)
        assert report.category in (LocalityCategory.ALGORITHM,
                                   LocalityCategory.CACHE_LINE)
        assert report.category.exploitable

    def test_streaming_kernel_classified_streaming(self):
        report = classify(make_streaming_kernel(n_ctas=90), TESLA_K40)
        assert report.category is LocalityCategory.STREAMING

    def test_report_carries_evidence(self):
        report = classify(make_streaming_kernel(n_ctas=60), TESLA_K40)
        assert len(report.evidence) >= 4
        assert report.coalescing > 0


class TestWorkloadCategories:
    """The probes recover the declared category (or at least its
    exploitability) for representative evaluation workloads."""

    @pytest.mark.parametrize("abbr", ["NN", "IMD"])
    def test_algorithm_apps_exploitable(self, abbr):
        from repro.workloads.registry import workload
        wl = workload(abbr)
        report = classify(wl.probe_kernel(TESLA_K40), TESLA_K40)
        assert report.category.exploitable, report.evidence

    @pytest.mark.parametrize("abbr", ["BS", "SAD", "MON"])
    def test_streaming_apps_not_exploitable(self, abbr):
        from repro.workloads.registry import workload
        wl = workload(abbr)
        report = classify(wl.probe_kernel(TESLA_K40), TESLA_K40)
        assert not report.category.exploitable, report.evidence

    def test_write_related_detected_for_nw(self):
        from repro.workloads.registry import workload
        wl = workload("NW")
        report = classify(wl.probe_kernel(TESLA_K40), TESLA_K40)
        assert report.write_related_hint
        assert not report.category.exploitable

    def test_data_related_detected_for_btr(self):
        from repro.workloads.registry import workload
        wl = workload("BTR")
        report = classify(wl.probe_kernel(TESLA_K40), TESLA_K40)
        assert not report.category.exploitable
