"""Bypassing (Section 4.3-II) and prefetching (Section 4.3-III) tests."""

import pytest

from repro.core.bypass import bypass_is_candidate, stream_access_fraction
from repro.core.prefetch import (
    DEFAULT_PREFETCH_DEPTH, choose_prefetch_depth, prefetch_plan)
from repro.core.indexing import X_PARTITION
from repro.gpu.config import TESLA_K40

from tests.conftest import (
    make_shared_table_kernel, make_streaming_kernel)


class TestStreamFraction:
    def test_pure_stream_kernel(self):
        kernel = make_streaming_kernel()
        assert stream_access_fraction(kernel) == pytest.approx(1.0)

    def test_mixed_kernel(self):
        kernel = make_shared_table_kernel(stream_rows_per_cta=2,
                                          table_rows=8)
        fraction = stream_access_fraction(kernel)
        assert 0.0 < fraction < 1.0
        assert fraction == pytest.approx(2 / 10)

    def test_bypass_candidate_requires_a_mix(self):
        assert bypass_is_candidate(make_shared_table_kernel())
        assert not bypass_is_candidate(make_streaming_kernel())


class TestPrefetch:
    def test_depth_bounded_by_trace(self):
        kernel = make_streaming_kernel()  # 3 accesses per CTA
        assert choose_prefetch_depth(kernel, TESLA_K40) == 3

    def test_depth_default_cap(self):
        kernel = make_shared_table_kernel()  # 10 accesses per CTA
        assert choose_prefetch_depth(kernel, TESLA_K40) == \
            DEFAULT_PREFETCH_DEPTH

    def test_plan_shape(self):
        kernel = make_streaming_kernel()
        plan = prefetch_plan(kernel, TESLA_K40, X_PARTITION)
        assert plan.scheme == "PFH+TOT"
        assert plan.mode == "placed"
        assert plan.prefetch_depth >= 1

    def test_plan_respects_throttle(self):
        kernel = make_streaming_kernel()
        plan = prefetch_plan(kernel, TESLA_K40, X_PARTITION,
                             active_agents=2)
        assert plan.active_agents == 2
