"""Binding tests: RR binding (Eq. 8) and the SM-binding cost model."""

import pytest

from repro.core.binding import (
    redirection_overhead, rr_binding, sm_binding_overhead, task_overhead)
from repro.gpu.config import GTX570, GTX980, GTX1080, TESLA_K40


class TestRrBinding:
    def test_equation8(self):
        # (w, i) = (u/M, u%M); paper example: u=4, M=2 -> (2, 0)
        pos = rr_binding(4, 2)
        assert (pos.w, pos.i) == (2, 0)

    def test_first_wave_covers_all_clusters(self):
        assert [rr_binding(u, 4).i for u in range(4)] == [0, 1, 2, 3]
        assert all(rr_binding(u, 4).w == 0 for u in range(4))

    def test_negative_rejected(self):
        with pytest.raises(IndexError):
            rr_binding(-1, 4)


class TestSmBindingOverhead:
    def test_static_binding_is_flat(self):
        # Fermi/Kepler derive agent ids from static warp slots
        assert sm_binding_overhead(GTX570, 1) == \
            sm_binding_overhead(GTX570, 8)

    def test_dynamic_binding_scales_with_agents(self):
        # Maxwell/Pascal serialize an atomicAdd per agent (Listing 5)
        low = sm_binding_overhead(GTX980, 1)
        high = sm_binding_overhead(GTX980, 16)
        assert high > low

    def test_maxwell_costs_more_than_kepler(self):
        # Section 5.2: M/P "endure the atomic and synchronization
        # overhead for SM-based binding"
        assert sm_binding_overhead(GTX980, 8) > sm_binding_overhead(TESLA_K40, 8)
        assert sm_binding_overhead(GTX1080, 8) > sm_binding_overhead(GTX570, 8)

    def test_invalid_agents(self):
        with pytest.raises(ValueError):
            sm_binding_overhead(GTX980, 0)


class TestPerTaskOverheads:
    def test_redirection_cheaper_than_tile(self):
        plain = redirection_overhead(GTX570, index_cost_units=0)
        tiled = redirection_overhead(GTX570, index_cost_units=1)
        assert tiled > plain

    def test_task_overhead_tile_cost(self):
        plain = task_overhead(GTX570, 0)
        tiled = task_overhead(GTX570, 1)
        assert tiled - plain == GTX570.costs.tile_index_cycles
