"""Redirection-based clustering tests (Listing 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexing import TileWiseIndexing, X_PARTITION, Y_PARTITION
from repro.core.partition import CtaPartitioner
from repro.core.redirection import redirection_plan
from repro.gpu.config import GTX570, TESLA_K40
from repro.kernels.kernel import Dim3, KernelSpec


def kernel_of(grid):
    return KernelSpec(name="k", grid=grid, block=Dim3(64),
                      trace=lambda bx, by, bz: [])


class TestRedirectionPlan:
    def test_scheme_and_mode(self):
        plan = redirection_plan(kernel_of(Dim3(30)), TESLA_K40)
        assert plan.scheme == "RD"
        assert plan.mode == "scheduled"
        assert plan.per_cta_overhead > 0

    def test_remap_is_permutation(self):
        kernel = kernel_of(Dim3(7, 5))
        plan = redirection_plan(kernel, TESLA_K40, Y_PARTITION)
        mapped = sorted(plan.resolve(u) for u in range(kernel.n_ctas))
        assert mapped == list(range(kernel.n_ctas))

    def test_rr_dispatch_realizes_clusters(self):
        """Under strict RR, new-kernel CTA u runs on SM u % M, and the
        redirection must send exactly cluster i's work to SM i."""
        kernel = kernel_of(Dim3(8, 6))
        config = TESLA_K40
        plan = redirection_plan(kernel, config, Y_PARTITION)
        partitioner = CtaPartitioner(Y_PARTITION.build(kernel.grid),
                                     config.num_sms)
        per_sm = {i: set() for i in range(config.num_sms)}
        for u in range(kernel.n_ctas):
            per_sm[u % config.num_sms].add(plan.resolve(u))
        for i in range(config.num_sms):
            assert per_sm[i] == set(partitioner.cluster_tasks(i))

    def test_tile_indexing_costs_more(self):
        kernel = kernel_of(Dim3(8, 8))
        plain = redirection_plan(kernel, GTX570, Y_PARTITION)
        tiled = redirection_plan(
            kernel, GTX570,
            indexing=TileWiseIndexing(kernel.grid, 4, 4))
        assert tiled.per_cta_overhead > plain.per_cta_overhead

    def test_notes_describe_configuration(self):
        plan = redirection_plan(kernel_of(Dim3(10, 2)), GTX570, X_PARTITION)
        assert plan.notes["indexing"] == "column-major"
        assert plan.notes["clusters"] == GTX570.num_sms


@settings(max_examples=40, deadline=None)
@given(gx=st.integers(1, 25), gy=st.integers(1, 12))
def test_property_redirection_always_permutes(gx, gy):
    kernel = kernel_of(Dim3(gx, gy))
    plan = redirection_plan(kernel, GTX570, Y_PARTITION)
    mapped = sorted(plan.resolve(u) for u in range(kernel.n_ctas))
    assert mapped == list(range(kernel.n_ctas))
