"""Property-based invariants of the clustering algebra (Eqs 3-8).

Hypothesis drives the paper's closed-form partition/inversion/binding
machinery across the whole parameter space instead of a handful of
hand-picked examples.  The invariants:

* ``f⁻¹(f(v)) = v`` — assign/invert are exact inverses (Eqs 3-7);
* cluster sizes are balanced to within one CTA and sum to ``|V|``;
* ``g_RR`` (Eq. 8) hits every ``(w, i)`` pair exactly once;
* a redirection plan's dispatch table is a permutation of the grid;
* an agent plan's per-SM task lists cover every CTA exactly once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import agent_plan
from repro.core.binding import rr_binding
from repro.core.indexing import (ColumnMajorIndexing, RowMajorIndexing,
                                 TileWiseIndexing)
from repro.core.partition import BalancedPartition, CtaPartitioner
from repro.core.redirection import redirection_plan
from repro.gpu.config import EVALUATION_PLATFORMS
from repro.kernels.kernel import Dim3
from tests.conftest import make_row_band_kernel

sizes = st.integers(min_value=1, max_value=600)
clusters = st.integers(min_value=1, max_value=40)


@given(n_ctas=sizes, n_clusters=clusters)
def test_assign_invert_round_trip(n_ctas, n_clusters):
    part = BalancedPartition(n_ctas, n_clusters)
    for v in range(n_ctas):
        pos = part.assign(v)
        assert part.invert(pos.w, pos.i) == v
        assert 0 <= pos.i < n_clusters
        assert 0 <= pos.w < part.cluster_size(pos.i)


@given(n_ctas=sizes, n_clusters=clusters)
def test_cluster_sizes_balanced_and_exhaustive(n_ctas, n_clusters):
    part = BalancedPartition(n_ctas, n_clusters)
    cluster_sizes = [part.cluster_size(i) for i in range(n_clusters)]
    assert sum(cluster_sizes) == n_ctas
    assert max(cluster_sizes) - min(cluster_sizes) <= 1
    # Members enumerate [0, n) exactly once across clusters.
    members = [v for i in range(n_clusters) for v in part.cluster_members(i)]
    assert sorted(members) == list(range(n_ctas))


@given(n_ctas=sizes, n_clusters=clusters)
def test_rr_binding_is_a_bijection(n_ctas, n_clusters):
    """Eq. 8 maps new-kernel CTA ids 1:1 onto (w, i) pairs."""
    seen = set()
    for u in range(n_ctas):
        pos = rr_binding(u, n_clusters)
        assert (pos.w, pos.i) not in seen
        seen.add((pos.w, pos.i))
        # And it inverts by construction: u = w*M + i.
        assert pos.w * n_clusters + pos.i == u
    assert len(seen) == n_ctas


@given(grid_x=st.integers(1, 24), grid_y=st.integers(1, 24),
       n_clusters=st.integers(1, 20),
       indexing_cls=st.sampled_from([RowMajorIndexing, ColumnMajorIndexing,
                                     TileWiseIndexing]))
def test_partitioner_tasks_cover_grid(grid_x, grid_y, n_clusters,
                                      indexing_cls):
    """Every grid CTA appears in exactly one cluster task list, and
    cluster_of/task agree in both directions."""
    indexing = indexing_cls(Dim3(grid_x, grid_y))
    part = CtaPartitioner(indexing, n_clusters)
    tasks = part.all_cluster_tasks()
    flat = [v for cluster in tasks for v in cluster]
    assert sorted(flat) == list(range(grid_x * grid_y))
    for i, cluster in enumerate(tasks):
        for w, v in enumerate(cluster):
            bx, by = v % grid_x, v // grid_x
            pos = part.cluster_of(bx, by)
            assert (pos.w, pos.i) == (w, i)
            assert part.task(w, i) == (bx, by)


@settings(max_examples=25, deadline=None)
@given(grid_x=st.integers(1, 12), grid_y=st.integers(1, 10),
       gpu=st.sampled_from(EVALUATION_PLATFORMS))
def test_redirection_dispatch_is_a_permutation(grid_x, grid_y, gpu):
    kernel = make_row_band_kernel(grid_x=grid_x, grid_y=grid_y)
    plan = redirection_plan(kernel, gpu)
    n = grid_x * grid_y
    dispatched = sorted(plan.resolve(u) for u in range(n))
    assert dispatched == list(range(n))


@settings(max_examples=25, deadline=None)
@given(grid_x=st.integers(1, 12), grid_y=st.integers(1, 10),
       gpu=st.sampled_from(EVALUATION_PLATFORMS))
def test_agent_plan_tasks_cover_every_cta_once(grid_x, grid_y, gpu):
    kernel = make_row_band_kernel(grid_x=grid_x, grid_y=grid_y)
    plan = agent_plan(kernel, gpu)
    assert plan.mode == "placed"
    assert len(plan.sm_tasks) == gpu.num_sms
    flat = [v for tasks in plan.sm_tasks for v in tasks]
    assert sorted(flat) == list(range(grid_x * grid_y))
    assert plan.active_agents >= 1
