"""Throttling vote tests (Section 4.3-I)."""

import pytest

from repro.core.throttling import ThrottleVote, throttle_candidates, vote_active_agents
from repro.core.indexing import X_PARTITION
from repro.gpu.config import GTX570, TESLA_K40
from repro.gpu.simulator import GpuSimulator

from tests.conftest import make_shared_table_kernel, make_streaming_kernel


class TestCandidates:
    def test_powers_of_two_plus_max(self):
        assert throttle_candidates(8) == [1, 2, 4, 8]
        assert throttle_candidates(6) == [1, 2, 4, 6]
        assert throttle_candidates(1) == [1]
        assert throttle_candidates(16) == [1, 2, 4, 8, 16]

    def test_invalid(self):
        with pytest.raises(ValueError):
            throttle_candidates(0)


class TestVote:
    def test_vote_returns_valid_degree(self):
        kernel = make_shared_table_kernel(n_ctas=45, warps=4)
        sim = GpuSimulator(TESLA_K40)
        vote = vote_active_agents(sim, kernel, X_PARTITION)
        assert 1 <= vote.active_agents <= vote.max_agents
        assert set(vote.cycles_by_candidate) == \
            set(throttle_candidates(vote.max_agents))

    def test_vote_picks_fastest(self):
        kernel = make_shared_table_kernel(n_ctas=45, warps=4)
        sim = GpuSimulator(TESLA_K40)
        vote = vote_active_agents(sim, kernel, X_PARTITION)
        best_cycles = min(vote.cycles_by_candidate.values())
        assert vote.cycles_by_candidate[vote.active_agents] == best_cycles

    def test_tie_prefers_more_agents(self):
        vote = ThrottleVote(active_agents=8, max_agents=8,
                            cycles_by_candidate={1: 100.0, 8: 100.0})
        # construction sanity; the tie rule itself:
        results = {1: 100.0, 8: 100.0}
        best = min(sorted(results, reverse=True), key=results.get)
        assert best == 8

    def test_streaming_kernel_not_throttled(self):
        # throttling only helps under contention (Section 5.2-(4))
        kernel = make_streaming_kernel(n_ctas=60)
        sim = GpuSimulator(GTX570)
        vote = vote_active_agents(sim, kernel, X_PARTITION)
        assert not vote.throttled or vote.active_agents >= vote.max_agents // 2

    def test_invalid_candidate_rejected(self):
        kernel = make_shared_table_kernel(n_ctas=30)
        sim = GpuSimulator(GTX570)
        with pytest.raises(ValueError):
            vote_active_agents(sim, kernel, X_PARTITION, candidates=[0])

    def test_throttled_property(self):
        assert ThrottleVote(1, 8, {}).throttled
        assert not ThrottleVote(8, 8, {}).throttled
