"""Inspector-based clustering tests (the paper's cited future work)."""

import random

import pytest

from repro.core.inspector import (
    affinity_order, conserved_affinity, inspect_kernel, inspector_plan)
from repro.gpu.config import TESLA_K40
from repro.gpu.simulator import GpuSimulator, simulate
from repro.kernels.access import read
from repro.kernels.kernel import AddressSpace, Dim3, KernelSpec


def permuted_band_kernel(n_ctas=240, band=16, seed=7):
    """Hidden structure: CTA bx serves band perm[bx]//band — invisible
    to id-order clustering, recoverable by inspection."""
    rng = random.Random(seed)
    perm = list(range(n_ctas))
    rng.shuffle(perm)
    space = AddressSpace()
    bands = space.alloc("bands", (n_ctas // band) * 8, 32)

    def trace(bx, by, bz):
        group = perm[bx] // band
        return [read(bands.addr(group * 8 + r, 0), 4, 32, 4)
                for r in range(8)]

    return KernelSpec(name="permband", grid=Dim3(n_ctas), block=Dim3(64),
                      trace=trace)


class TestInspection:
    def test_graph_covers_all_ctas(self):
        kernel = permuted_band_kernel(n_ctas=120)
        inspection = inspect_kernel(kernel)
        assert inspection.graph.number_of_nodes() == 120
        assert inspection.affinity_edges > 0

    def test_sampling_reduces_work(self):
        kernel = permuted_band_kernel(n_ctas=120)
        full = inspect_kernel(kernel, sample_fraction=1.0)
        half = inspect_kernel(kernel, sample_fraction=0.5)
        assert half.sampled_ctas < full.sampled_ctas
        assert half.affinity_edges <= full.affinity_edges

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            inspect_kernel(permuted_band_kernel(60), sample_fraction=0.0)

    def test_streaming_kernel_has_no_affinity(self):
        from tests.conftest import make_streaming_kernel
        inspection = inspect_kernel(make_streaming_kernel(40))
        assert inspection.affinity_edges == 0


class TestAffinityOrder:
    def test_order_is_permutation(self):
        kernel = permuted_band_kernel(n_ctas=120)
        inspection = inspect_kernel(kernel)
        order = affinity_order(inspection)
        assert sorted(order) == list(range(120))

    def test_recovers_hidden_structure(self):
        kernel = permuted_band_kernel(n_ctas=240, band=16)
        inspection = inspect_kernel(kernel)
        order = affinity_order(inspection)
        identity = conserved_affinity(inspection, list(range(240)), 15)
        recovered = conserved_affinity(inspection, order, 15)
        assert recovered > identity + 0.3
        assert recovered > 0.9

    def test_no_edges_keeps_canonical_order(self):
        from tests.conftest import make_streaming_kernel
        kernel = make_streaming_kernel(30)
        inspection = inspect_kernel(kernel)
        assert affinity_order(inspection) == list(range(30))

    def test_conserved_affinity_empty_graph(self):
        from tests.conftest import make_streaming_kernel
        inspection = inspect_kernel(make_streaming_kernel(10))
        assert conserved_affinity(inspection, list(range(10)), 4) == 1.0


class TestInspectorPlan:
    def test_beats_id_order_clustering_on_hidden_structure(self):
        kernel = permuted_band_kernel()
        gpu = TESLA_K40
        sim = GpuSimulator(gpu)
        base = simulate(sim, kernel)
        plan, inspection = inspector_plan(kernel, gpu)
        clustered = simulate(sim, kernel, plan)
        assert plan.scheme == "CLU+INS"
        assert clustered.cycles < 0.85 * base.cycles
        assert clustered.l2_transactions < 0.4 * base.l2_transactions

    def test_plan_covers_every_cta(self):
        kernel = permuted_band_kernel(n_ctas=130)
        plan, _ = inspector_plan(kernel, TESLA_K40)
        flat = sorted(t for tasks in plan.sm_tasks for t in tasks)
        assert flat == list(range(130))

    def test_random_data_yields_no_gain_as_paper_expects(self):
        """On genuinely data-dependent access (BTR), the inspector finds
        no exploitable order — matching the paper's skepticism."""
        from repro.workloads.registry import workload
        kernel = workload("BTR").kernel(scale=0.4, config=TESLA_K40)
        sim = GpuSimulator(TESLA_K40)
        base = simulate(sim, kernel)
        plan, _ = inspector_plan(kernel, TESLA_K40)
        clustered = simulate(sim, kernel, plan)
        assert 0.9 <= clustered.cycles / base.cycles <= 1.1
