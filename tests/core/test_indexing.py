"""Indexing method tests: every Figure-7 linearization is a bijection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexing import (
    ArbitraryIndexing, ColumnMajorIndexing, DIRECTIONS, RowMajorIndexing,
    TileWiseIndexing, X_PARTITION, Y_PARTITION, direction)
from repro.kernels.kernel import Dim3

GRID = Dim3(4, 4)


class TestRowMajor:
    def test_figure7_example(self):
        # Figure 7 row-major: v = y*nx + x
        idx = RowMajorIndexing(GRID)
        assert idx.linearize(0, 0) == 0
        assert idx.linearize(3, 0) == 3
        assert idx.linearize(0, 1) == 4
        assert idx.linearize(3, 3) == 15

    def test_coords_roundtrip(self):
        idx = RowMajorIndexing(GRID)
        for v in range(16):
            assert idx.linearize(*idx.coords(v)) == v

    def test_out_of_grid(self):
        with pytest.raises(IndexError):
            RowMajorIndexing(GRID).linearize(4, 0)


class TestColumnMajor:
    def test_figure7_example(self):
        # Figure 7 column-major: v = x*ny + y
        idx = ColumnMajorIndexing(GRID)
        assert idx.linearize(0, 0) == 0
        assert idx.linearize(0, 3) == 3
        assert idx.linearize(1, 0) == 4

    def test_on_1d_grid_equals_row_major(self):
        grid = Dim3(10)
        col = ColumnMajorIndexing(grid)
        row = RowMajorIndexing(grid)
        for bx in range(10):
            assert col.linearize(bx, 0) == row.linearize(bx, 0)


class TestTileWise:
    def test_figure7_example(self):
        # Figure 7 tile-wise on a 4x4 grid with 2x2 tiles:
        # 0 1 | 4 5 / 2 3 | 6 7 / ...
        idx = TileWiseIndexing(GRID, tile_w=2, tile_h=2)
        assert idx.linearize(0, 0) == 0
        assert idx.linearize(1, 0) == 1
        assert idx.linearize(0, 1) == 2
        assert idx.linearize(1, 1) == 3
        assert idx.linearize(2, 0) == 4

    def test_ragged_grid(self):
        idx = TileWiseIndexing(Dim3(5, 3), tile_w=2, tile_h=2)
        seen = {idx.linearize(x, y) for x in range(5) for y in range(3)}
        assert seen == set(range(15))

    def test_coords_roundtrip_ragged(self):
        idx = TileWiseIndexing(Dim3(7, 5), tile_w=3, tile_h=2)
        for v in range(35):
            bx, by = idx.coords(v)
            assert idx.linearize(bx, by) == v

    def test_has_index_cost(self):
        assert TileWiseIndexing(GRID).index_cost_units == 1
        assert RowMajorIndexing(GRID).index_cost_units == 0

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            TileWiseIndexing(GRID, tile_w=0)

    def test_out_of_range_linear_id(self):
        with pytest.raises(IndexError):
            TileWiseIndexing(GRID).coords(16)


class TestArbitrary:
    def test_custom_permutation(self):
        perm = list(reversed(range(16)))
        idx = ArbitraryIndexing(GRID, perm)
        assert idx.coords(0) == (3, 3)
        assert idx.linearize(3, 3) == 0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            ArbitraryIndexing(GRID, [0] * 16)


class TestDirections:
    def test_lookup(self):
        assert direction("X-P") is X_PARTITION
        assert direction("Y-P") is Y_PARTITION
        with pytest.raises(KeyError):
            direction("Z-P")

    def test_y_partition_builds_row_major(self):
        assert isinstance(Y_PARTITION.build(GRID), RowMajorIndexing)

    def test_x_partition_builds_column_major(self):
        assert isinstance(X_PARTITION.build(GRID), ColumnMajorIndexing)

    def test_direction_names(self):
        assert set(DIRECTIONS) == {"X-P", "Y-P"}


@settings(max_examples=60, deadline=None)
@given(gx=st.integers(1, 20), gy=st.integers(1, 20),
       tw=st.integers(1, 6), th=st.integers(1, 6))
def test_property_every_indexing_is_a_bijection(gx, gy, tw, th):
    grid = Dim3(gx, gy)
    methods = [RowMajorIndexing(grid), ColumnMajorIndexing(grid),
               TileWiseIndexing(grid, tw, th)]
    for method in methods:
        values = {method.linearize(x, y)
                  for x in range(gx) for y in range(gy)}
        assert values == set(range(gx * gy)), method.name
        for v in range(gx * gy):
            assert method.linearize(*method.coords(v)) == v
