"""CUDA code generation tests (Listings 4/5, Figures 9/10)."""

import pytest

from repro.core.codegen import (
    generate_agent_source, generate_from_decision,
    generate_redirection_source)
from repro.core.framework import optimize
from repro.core.indexing import TileWiseIndexing, X_PARTITION, Y_PARTITION
from repro.gpu.config import GTX570, GTX980, TESLA_K40
from repro.gpu.occupancy import max_ctas_per_sm
from repro.kernels.kernel import Dim3, KernelSpec, LocalityCategory

from tests.conftest import make_row_band_kernel, make_streaming_kernel


def kernel_of(grid=Dim3(16, 8)):
    return KernelSpec(name="MyKernel", grid=grid, block=Dim3(128),
                      trace=lambda bx, by, bz: [], regs_per_thread=16)


class TestRedirectionSource:
    def test_header_structure(self):
        src = generate_redirection_source(kernel_of(), TESLA_K40, Y_PARTITION)
        assert src.header_name == "Redirection_Clustering.cuh"
        assert f"#define SM {TESLA_K40.num_sms}" in src.header
        assert "#define REDIRECTION" in src.header
        # the Eq.-7 closed form from Listing 4
        assert "min(0, (_ctas % SM) - (_u % SM))" in src.header

    def test_kernel_uses_row_indexing_for_y_partition(self):
        src = generate_redirection_source(kernel_of(), TESLA_K40, Y_PARTITION)
        assert "ROW_INDEXING;" in src.kernel
        assert "mykernel_clustered" in src.kernel

    def test_col_indexing_for_x_partition(self):
        src = generate_redirection_source(kernel_of(), TESLA_K40, X_PARTITION)
        assert "COL_INDEXING;" in src.kernel

    def test_files_bundle(self):
        src = generate_redirection_source(kernel_of(), GTX570, Y_PARTITION)
        files = src.files()
        assert "Redirection_Clustering.cuh" in files
        assert any(name.endswith(".cu") for name in files)


class TestAgentSource:
    def test_header_has_both_binding_paths(self):
        src = generate_agent_source(kernel_of(), GTX980, Y_PARTITION)
        assert "__CUDA_ARCH__ < 500" in src.header
        assert "%%warpid" in src.header          # static F/K path
        assert "atomicAdd(&_global_counters" in src.header  # dynamic M/P
        assert "__syncthreads()" in src.header

    def test_throttling_macros(self):
        kernel = kernel_of()
        limit = max_ctas_per_sm(GTX980, kernel)
        src = generate_agent_source(kernel, GTX980, Y_PARTITION,
                                    active_agents=2)
        assert "#define ACTIVE_AGENTS 2" in src.header
        assert f"#define MAX_AGENTS {limit}" in src.header
        assert "_agent_id >= ACTIVE_AGENTS" in src.header

    def test_launch_bounds_and_params(self):
        src = generate_agent_source(kernel_of(), TESLA_K40, Y_PARTITION)
        assert "__launch_bounds__" in src.header
        assert "PARAM_CALL" in src.header
        assert "SM * MAX_AGENTS" in src.kernel

    def test_bypass_and_prefetch_macros_present(self):
        src = generate_agent_source(kernel_of(), GTX570, Y_PARTITION)
        assert "ld.global.cg" in src.header
        assert "prefetch.global.L1" in src.header
        assert "__ldg" in src.header

    def test_invalid_agents(self):
        with pytest.raises(ValueError):
            generate_agent_source(kernel_of(), GTX570, Y_PARTITION,
                                  active_agents=0)

    def test_tile_indexing_unsupported(self):
        kernel = kernel_of()
        with pytest.raises(ValueError, match="hand-written"):
            generate_redirection_source(
                kernel, GTX570,
                direction=type("D", (), {
                    "build": lambda self, grid: TileWiseIndexing(grid)})())


class TestFromDecision:
    def test_clustered_decision_emits_agent_bundle(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        src = generate_from_decision(kernel, TESLA_K40, decision)
        if decision.plan.scheme == "BSL":
            assert src is None
        else:
            assert src.header_name == "Agent_Clustering.cuh"
            assert f"ACTIVE_AGENTS {decision.plan.active_agents}" \
                in src.header

    def test_streaming_decision(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        src = generate_from_decision(kernel, TESLA_K40, decision)
        if decision.plan.scheme == "BSL":
            assert src is None
        else:
            assert "Agent_Clustering" in src.header_name
