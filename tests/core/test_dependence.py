"""Dependency analysis tests (Section 4.2.1-A)."""

from repro.core.dependence import analyze_direction, ref_vote
from repro.core.indexing import X_PARTITION, Y_PARTITION
from repro.kernels.kernel import ArrayRef, Dim3, KernelSpec


def kernel_with_refs(refs, grid=Dim3(8, 8)):
    return KernelSpec(name="k", grid=grid, block=Dim3(64),
                      trace=lambda bx, by, bz: [], array_refs=tuple(refs))


class TestRefVotes:
    def test_bx_free_ref_votes_y_partition(self):
        # A[f(by)][k]: identical for all bx -> reuse across X
        vote, weight = ref_vote(ArrayRef("A", (("by", "ty"), ("k",))))
        assert vote == "Y-P"
        assert weight == 2.0

    def test_by_free_ref_votes_x_partition(self):
        vote, _ = ref_vote(ArrayRef("B", (("k",), ("bx", "tx"))))
        assert vote == "X-P"

    def test_trailing_bx_weak_y_vote(self):
        vote, weight = ref_vote(ArrayRef("A", (("by", "ty"), ("bx", "tx"))))
        assert vote == "Y-P"
        assert weight == 1.0

    def test_trailing_by_weak_x_vote(self):
        vote, _ = ref_vote(ArrayRef("A", (("bx",), ("by",))))
        assert vote == "X-P"

    def test_broadcast_ref_no_vote(self):
        vote, weight = ref_vote(ArrayRef("T", (("j",),)))
        assert vote == "none"
        assert weight == 0.0

    def test_weight_scales_vote(self):
        _, light = ref_vote(ArrayRef("A", (("by",), ("k",)), weight=1.0))
        _, heavy = ref_vote(ArrayRef("A", (("by",), ("k",)), weight=3.0))
        assert heavy == 3 * light


class TestDirectionAnalysis:
    def test_1d_grid_always_x_partition(self):
        # "If a kernel grid is 1D, we simply perform X-partitioning"
        kernel = kernel_with_refs([ArrayRef("A", (("by",), ("k",)))],
                                  grid=Dim3(100))
        analysis = analyze_direction(kernel)
        assert analysis.direction is X_PARTITION
        assert analysis.decisive

    def test_mm_picks_y_partition_via_weights(self):
        # the paper's MM: A (weight-boosted) wins over B
        kernel = kernel_with_refs([
            ArrayRef("A", (("by", "ty"), ("k",)), weight=1.5),
            ArrayRef("B", (("k",), ("bx", "tx")), weight=1.0),
            ArrayRef("C", (("by", "ty"), ("bx", "tx")), is_write=True),
        ])
        analysis = analyze_direction(kernel)
        assert analysis.direction is Y_PARTITION
        assert analysis.decisive

    def test_writes_do_not_vote(self):
        kernel = kernel_with_refs([
            ArrayRef("A", (("by",), ("k",))),
            ArrayRef("C", (("k",), ("bx",)), is_write=True, weight=10.0),
        ])
        analysis = analyze_direction(kernel)
        assert analysis.direction is Y_PARTITION

    def test_tie_is_not_decisive(self):
        kernel = kernel_with_refs([
            ArrayRef("A", (("by",), ("k",))),
            ArrayRef("B", (("k",), ("bx",))),
        ])
        analysis = analyze_direction(kernel)
        assert not analysis.decisive

    def test_no_refs_not_decisive(self):
        analysis = analyze_direction(kernel_with_refs([]))
        assert not analysis.decisive

    def test_per_ref_report(self):
        kernel = kernel_with_refs([ArrayRef("A", (("by",), ("k",)))])
        analysis = analyze_direction(kernel)
        assert analysis.per_ref == {"A": "Y-P"}


class TestTable2Directions:
    def test_workload_analysis_matches_table2_for_2d_algorithm_apps(self):
        """The analysis recovers Table 2's direction for the 2D
        algorithm-related applications that drove the paper's rule."""
        from repro.workloads.registry import workload
        for abbr in ("MM", "NN", "IMD", "HS"):
            wl = workload(abbr)
            kernel = wl.kernel(scale=0.25)
            analysis = analyze_direction(kernel)
            assert analysis.direction.name == wl.table2.partition, abbr

    def test_1d_apps_get_x_partition(self):
        from repro.workloads.registry import workload
        for abbr in ("KMN", "BKP", "SYK", "ATX", "MVT", "BC", "BS"):
            wl = workload(abbr)
            kernel = wl.kernel(scale=0.25)
            assert analyze_direction(kernel).direction is X_PARTITION, abbr
