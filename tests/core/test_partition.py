"""Partitioning/inverting tests: Equations 3-7 and the MM worked example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexing import RowMajorIndexing, Y_PARTITION
from repro.core.partition import BalancedPartition, CtaPartitioner
from repro.kernels.kernel import Dim3


class TestBalance:
    def test_even_split(self):
        part = BalancedPartition(12, 4)
        assert [part.cluster_size(i) for i in range(4)] == [3, 3, 3, 3]

    def test_uneven_split_front_loaded(self):
        part = BalancedPartition(10, 4)
        assert [part.cluster_size(i) for i in range(4)] == [3, 3, 2, 2]

    def test_more_clusters_than_ctas(self):
        part = BalancedPartition(3, 5)
        assert [part.cluster_size(i) for i in range(5)] == [1, 1, 1, 0, 0]

    def test_skew_at_most_one(self):
        for n in range(1, 60):
            for m in range(1, 20):
                sizes = [BalancedPartition(n, m).cluster_size(i)
                         for i in range(m)]
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == n

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            BalancedPartition(0, 3)
        with pytest.raises(ValueError):
            BalancedPartition(3, 0)


class TestPaperWorkedExample:
    """Section 4.2's MM walk-through: |V|=6, M=2."""

    def test_partition_of_cta_01(self):
        # f(CTA-(0,1)) = f(v=3) = (w=0, i=1)
        part = BalancedPartition(6, 2)
        pos = part.assign(3)
        assert (pos.w, pos.i) == (0, 1)

    def test_inverse_of_21(self):
        # f^-1((2,1)) = 5 (Section 4.2.2)
        part = BalancedPartition(6, 2)
        assert part.invert(2, 1) == 5

    def test_cluster_contents(self):
        part = BalancedPartition(6, 2)
        assert part.cluster_members(0) == [0, 1, 2]
        assert part.cluster_members(1) == [3, 4, 5]


class TestAssignInvertConsistency:
    def test_roundtrip_small(self):
        part = BalancedPartition(10, 3)
        for v in range(10):
            pos = part.assign(v)
            assert part.invert(pos.w, pos.i) == v

    def test_bounds(self):
        part = BalancedPartition(10, 3)
        with pytest.raises(IndexError):
            part.assign(10)
        with pytest.raises(IndexError):
            part.invert(0, 3)
        with pytest.raises(IndexError):
            part.invert(4, 0)  # cluster 0 has 4 members? (10,3)->4,3,3
        part.invert(3, 0)  # valid: positions 0..3


@settings(max_examples=120, deadline=None)
@given(n=st.integers(1, 400), m=st.integers(1, 40))
def test_property_assign_invert_bijection(n, m):
    part = BalancedPartition(n, m)
    seen = set()
    for v in range(n):
        pos = part.assign(v)
        assert 0 <= pos.i < m
        assert 0 <= pos.w < part.cluster_size(pos.i)
        assert part.invert(pos.w, pos.i) == v
        seen.add((pos.w, pos.i))
    assert len(seen) == n


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 200), m=st.integers(1, 20))
def test_property_equation7_closed_form(n, m):
    """v = i*(|V|/M + 1) + w + min(|V|%M - i, 0) — paper Eq. 7."""
    part = BalancedPartition(n, m)
    q, r = divmod(n, m)
    for i in range(m):
        for w in range(part.cluster_size(i)):
            assert part.invert(w, i) == i * (q + 1) + w + min(r - i, 0)


class TestCtaPartitioner:
    def test_cluster_tasks_cover_grid(self):
        grid = Dim3(6, 5)
        partitioner = CtaPartitioner(RowMajorIndexing(grid), 4)
        tasks = partitioner.all_cluster_tasks()
        flat = sorted(t for cluster in tasks for t in cluster)
        assert flat == list(range(30))

    def test_row_major_clusters_are_row_bands(self):
        grid = Dim3(4, 4)
        partitioner = CtaPartitioner(Y_PARTITION.build(grid), 4)
        # 16 CTAs over 4 clusters: cluster 0 = row 0 (ids 0..3)
        assert partitioner.cluster_tasks(0) == [0, 1, 2, 3]
        assert partitioner.cluster_tasks(3) == [12, 13, 14, 15]

    def test_task_lookup(self):
        grid = Dim3(3, 2)
        partitioner = CtaPartitioner(RowMajorIndexing(grid), 2)
        assert partitioner.task(0, 1) == (0, 1)  # v=3 -> (bx=0, by=1)

    def test_cluster_of(self):
        grid = Dim3(3, 2)
        partitioner = CtaPartitioner(RowMajorIndexing(grid), 2)
        pos = partitioner.cluster_of(0, 1)
        assert (pos.w, pos.i) == (0, 1)

    def test_conserved_affinity_row_neighbors(self):
        grid = Dim3(8, 8)
        partitioner = CtaPartitioner(RowMajorIndexing(grid), 8)

        def row_neighbors(v):
            # same-row adjacent CTA in the row-major order
            if v % 8 < 7:
                yield v + 1

        # row-major clustering keeps every same-row edge inside a cluster
        assert partitioner.conserved_affinity(row_neighbors) == 1.0

    def test_conserved_affinity_empty(self):
        grid = Dim3(2, 2)
        partitioner = CtaPartitioner(RowMajorIndexing(grid), 2)
        assert partitioner.conserved_affinity(lambda v: []) == 1.0
