"""Framework tests (Figure 11): the end-to-end optimization pipeline."""

from repro.core.framework import optimize
from repro.gpu.config import TESLA_K40
from repro.kernels.kernel import LocalityCategory

from tests.conftest import make_row_band_kernel, make_streaming_kernel


class TestExploitablePath:
    def test_algorithm_kernel_gets_clustered(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert decision.plan.scheme.startswith("CLU") or \
            decision.plan.scheme == "BSL"
        assert "BSL" in decision.cycles_by_scheme
        assert "CLU" in decision.cycles_by_scheme

    def test_chosen_plan_not_slower_than_baseline(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert decision.expected_speedup >= 0.98

    def test_direction_from_dependency_analysis(self):
        kernel = make_row_band_kernel(grid_x=12, grid_y=12)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        # the band ref is bx-free -> Y-partitioning
        assert decision.direction.name == "Y-P"
        assert any("dependency analysis" in r for r in decision.reasoning)


class TestNonExploitablePath:
    def test_streaming_kernel_gets_prefetch_or_baseline(self):
        kernel = make_streaming_kernel(n_ctas=90)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.plan.scheme in ("PFH+TOT", "BSL")
        assert "PFH+TOT" in decision.cycles_by_scheme

    def test_reasoning_mentions_no_exploitable(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert any("no exploitable" in r for r in decision.reasoning)


class TestClassificationIntegration:
    def test_auto_classification_populates_report(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40)
        assert decision.classification is not None
        assert decision.category is decision.classification.category

    def test_developer_hint_skips_classification(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.classification is None
        assert any("declared by developer" in r for r in decision.reasoning)


class TestDecisionObject:
    def test_expected_speedup_without_data(self):
        kernel = make_streaming_kernel(n_ctas=30)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.expected_speedup > 0
        assert decision.kernel_name == kernel.name
        assert decision.gpu_name == TESLA_K40.name


def make_tied_direction_kernel(grid: int = 10) -> "KernelSpec":
    """2D kernel whose read refs vote X-P and Y-P with equal weight,
    forcing ``analyze_direction`` into the indecisive tie that makes
    the framework fall back to its empirical direction probe."""
    from repro.kernels.access import read
    from repro.kernels.kernel import AddressSpace, ArrayRef, Dim3, KernelSpec

    space = AddressSpace()
    rows = space.alloc("rows", grid, 32)
    cols = space.alloc("cols", grid, 32)

    def trace(bx, by, bz):
        return [read(rows.addr(by, 0), 4, 32, 4),
                read(cols.addr(bx, 0), 4, 32, 4)]

    return KernelSpec(
        name="tied", grid=Dim3(grid, grid), block=Dim3(64), trace=trace,
        regs_per_thread=16, category=LocalityCategory.ALGORITHM,
        array_refs=(
            ArrayRef("rows", (("by",),)),     # no bx -> votes X-P
            ArrayRef("cols", (("bx",),)),     # no by -> votes Y-P
            ArrayRef("out", (("by",), ("bx", "tx")), is_write=True),
        ),
    )


def make_nonexploitable_kernel(category, n_ctas: int = 64) -> "KernelSpec":
    """The streaming-shaped kernel, declared under any of the three
    non-exploitable categories (data/write/streaming)."""
    from dataclasses import replace
    return replace(make_streaming_kernel(n_ctas=n_ctas), category=category)


class TestDecisionBoundaries:
    """One test per locality category: the Fig.-11 ladder must take the
    expected branch, with the expected scheme/throttle/bypass record."""

    def _exploitable_invariants(self, decision):
        # The exploitable ladder always measures BSL and CLU, applies
        # the throttling vote, and records the agent degrees on the
        # shippable summary.
        assert "BSL" in decision.cycles_by_scheme
        assert "CLU" in decision.cycles_by_scheme
        assert any("throttling vote" in r for r in decision.reasoning)
        summary = decision.summarize()
        if summary.scheme != "BSL":
            assert 1 <= summary.active_agents <= summary.max_agents

    def test_algorithm_category_takes_clustering_path(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert decision.scheme.startswith("CLU") or decision.scheme == "BSL"
        assert "PFH+TOT" not in decision.cycles_by_scheme
        self._exploitable_invariants(decision)

    def test_cache_line_category_takes_clustering_path_with_bypass(self):
        from repro.core.bypass import bypass_is_candidate
        from tests.conftest import make_shared_table_kernel
        kernel = make_shared_table_kernel(n_ctas=60)
        assert bypass_is_candidate(kernel), \
            "fixture must mix streaming and reusable loads"
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.CACHE_LINE)
        assert decision.scheme.startswith("CLU") or decision.scheme == "BSL"
        # Mixed streams mean the ladder must at least *try* bypassing.
        assert "CLU+TOT+BPS" in decision.cycles_by_scheme
        assert any("bypass" in r for r in decision.reasoning)
        self._exploitable_invariants(decision)

    def test_data_category_takes_prefetch_path(self):
        kernel = make_nonexploitable_kernel(LocalityCategory.DATA)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.DATA)
        assert decision.scheme in ("PFH+TOT", "BSL")
        assert "PFH+TOT" in decision.cycles_by_scheme
        assert "CLU" not in decision.cycles_by_scheme
        assert any("no exploitable" in r for r in decision.reasoning)

    def test_write_category_takes_prefetch_path(self):
        kernel = make_nonexploitable_kernel(LocalityCategory.WRITE)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.WRITE)
        assert decision.scheme in ("PFH+TOT", "BSL")
        assert "PFH+TOT" in decision.cycles_by_scheme
        assert "CLU" not in decision.cycles_by_scheme

    def test_streaming_category_takes_prefetch_path_with_throttle(self):
        kernel = make_streaming_kernel(n_ctas=90)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.scheme in ("PFH+TOT", "BSL")
        # The non-exploitable branch throttles via the vote and says so.
        assert any("agents" in r for r in decision.reasoning)

    def test_tied_votes_fall_back_to_empirical_probe(self):
        from repro.core.dependence import analyze_direction
        kernel = make_tied_direction_kernel(grid=10)
        analysis = analyze_direction(kernel)
        assert not analysis.decisive
        assert analysis.x_votes == analysis.y_votes > 0
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert any("empirical probe" in r for r in decision.reasoning)
        assert decision.direction.name in ("X-P", "Y-P")

    def test_summary_round_trips_agent_degrees(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        summary = decision.summarize()
        assert summary.active_agents == decision.plan.active_agents
        assert summary.max_agents == decision.plan.notes.get("max_agents", 0)
