"""Framework tests (Figure 11): the end-to-end optimization pipeline."""

from repro.core.framework import optimize
from repro.gpu.config import TESLA_K40
from repro.kernels.kernel import LocalityCategory

from tests.conftest import make_row_band_kernel, make_streaming_kernel


class TestExploitablePath:
    def test_algorithm_kernel_gets_clustered(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert decision.plan.scheme.startswith("CLU") or \
            decision.plan.scheme == "BSL"
        assert "BSL" in decision.cycles_by_scheme
        assert "CLU" in decision.cycles_by_scheme

    def test_chosen_plan_not_slower_than_baseline(self):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        assert decision.expected_speedup >= 0.98

    def test_direction_from_dependency_analysis(self):
        kernel = make_row_band_kernel(grid_x=12, grid_y=12)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.ALGORITHM)
        # the band ref is bx-free -> Y-partitioning
        assert decision.direction.name == "Y-P"
        assert any("dependency analysis" in r for r in decision.reasoning)


class TestNonExploitablePath:
    def test_streaming_kernel_gets_prefetch_or_baseline(self):
        kernel = make_streaming_kernel(n_ctas=90)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.plan.scheme in ("PFH+TOT", "BSL")
        assert "PFH+TOT" in decision.cycles_by_scheme

    def test_reasoning_mentions_no_exploitable(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert any("no exploitable" in r for r in decision.reasoning)


class TestClassificationIntegration:
    def test_auto_classification_populates_report(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40)
        assert decision.classification is not None
        assert decision.category is decision.classification.category

    def test_developer_hint_skips_classification(self):
        kernel = make_streaming_kernel(n_ctas=60)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.classification is None
        assert any("declared by developer" in r for r in decision.reasoning)


class TestDecisionObject:
    def test_expected_speedup_without_data(self):
        kernel = make_streaming_kernel(n_ctas=30)
        decision = optimize(kernel, TESLA_K40,
                            category=LocalityCategory.STREAMING)
        assert decision.expected_speedup > 0
        assert decision.kernel_name == kernel.name
        assert decision.gpu_name == TESLA_K40.name
