"""The float-multiplier fidelity shim: mapping, warning, and the
removal guard.

``resolve_fidelity`` still accepts the pre-1.4 raw scale-multiplier
floats so old tuner call sites keep working; these tests pin down the
exact deprecation contract (what maps where, what the warning says,
and that the shim cannot silently outlive its advertised removal in
2.0) so the shim can be deleted confidently, not accidentally.
"""

import warnings

import pytest

import repro
from repro.fidelity import (ANALYTIC, FIDELITIES, FULL, REDUCED,
                            resolve_fidelity)


class TestNamedResolution:
    def test_none_returns_default(self):
        assert resolve_fidelity(None) is FULL
        assert resolve_fidelity(None, default=ANALYTIC) is ANALYTIC

    def test_fidelity_passes_through(self):
        for fid in FIDELITIES.values():
            assert resolve_fidelity(fid) is fid

    def test_names_case_insensitive(self):
        assert resolve_fidelity("analytic") is ANALYTIC
        assert resolve_fidelity("Reduced") is REDUCED
        assert resolve_fidelity("FULL") is FULL

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            resolve_fidelity("ultra")


class TestFloatShim:
    def test_multiplier_at_or_above_one_maps_to_full(self):
        for value in (1.0, 1, 1.5, 4.0):
            with pytest.deprecated_call():
                assert resolve_fidelity(value) is FULL

    def test_multiplier_below_one_maps_to_reduced(self):
        for value in (0.5, 0.25, 0.999):
            with pytest.deprecated_call():
                assert resolve_fidelity(value) is REDUCED

    def test_warning_names_the_replacement_rung(self):
        """The message must tell the caller what to write instead."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_fidelity(0.5)
        assert len(caught) == 1
        warning = caught[0]
        assert warning.category is DeprecationWarning
        message = str(warning.message)
        assert "float fidelity 0.5 is deprecated" in message
        assert "'reduced'" in message
        assert "repro.fidelity" in message

    def test_nonpositive_multiplier_rejected_without_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for value in (0.0, -1.0):
                with pytest.raises(ValueError, match="must be > 0"):
                    resolve_fidelity(value)
        assert not caught  # rejects never deprecation-warn

    def test_bool_is_not_a_multiplier(self):
        """``True`` is an ``int`` subclass but means nothing as a
        fidelity; it must hit the TypeError arm, not map to full."""
        for value in (True, False):
            with pytest.raises(TypeError, match="legacy float"):
                resolve_fidelity(value)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="Fidelity, rung name"):
            resolve_fidelity(["full"])


class TestRemovalGuard:
    def test_shim_removed_by_2_0(self):
        """The float shim is advertised for removal in the next major
        version.  If this assertion ever fires, the release being cut
        still carries the shim: delete the float arm of
        ``resolve_fidelity`` (and this test class) before tagging 2.0,
        or consciously extend the deprecation window here."""
        major = int(repro.__version__.split(".")[0])
        assert major < 2, (
            f"repro {repro.__version__} still accepts deprecated float "
            f"fidelity multipliers; remove the shim in "
            f"repro.fidelity.resolve_fidelity before releasing 2.x")
