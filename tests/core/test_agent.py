"""Agent-based clustering tests (Listing 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import agent_plan
from repro.core.indexing import X_PARTITION, Y_PARTITION
from repro.gpu.config import GTX570, GTX980, TESLA_K40
from repro.gpu.occupancy import max_ctas_per_sm
from repro.kernels.kernel import Dim3, KernelSpec


def kernel_of(grid, block=256, regs=16):
    return KernelSpec(name="k", grid=grid, block=Dim3(block),
                      trace=lambda bx, by, bz: [], regs_per_thread=regs)


class TestAgentPlan:
    def test_mode_and_scheme(self):
        plan = agent_plan(kernel_of(Dim3(64)), TESLA_K40)
        assert plan.mode == "placed"
        assert plan.scheme == "CLU"

    def test_task_lists_partition_the_grid(self):
        kernel = kernel_of(Dim3(9, 7))
        plan = agent_plan(kernel, TESLA_K40, Y_PARTITION)
        flat = sorted(t for tasks in plan.sm_tasks for t in tasks)
        assert flat == list(range(kernel.n_ctas))
        assert len(plan.sm_tasks) == TESLA_K40.num_sms

    def test_task_lists_balanced(self):
        kernel = kernel_of(Dim3(100))
        plan = agent_plan(kernel, TESLA_K40, X_PARTITION)
        sizes = [len(tasks) for tasks in plan.sm_tasks]
        assert max(sizes) - min(sizes) <= 1

    def test_default_agents_is_maximum(self):
        kernel = kernel_of(Dim3(64))
        plan = agent_plan(kernel, TESLA_K40)
        assert plan.active_agents == max_ctas_per_sm(TESLA_K40, kernel)
        assert plan.notes["max_agents"] == plan.active_agents

    def test_throttled_scheme_label(self):
        kernel = kernel_of(Dim3(64))
        plan = agent_plan(kernel, TESLA_K40, active_agents=1)
        assert plan.scheme == "CLU+TOT"
        assert plan.active_agents == 1

    def test_invalid_agent_counts(self):
        kernel = kernel_of(Dim3(64))
        limit = max_ctas_per_sm(TESLA_K40, kernel)
        with pytest.raises(ValueError):
            agent_plan(kernel, TESLA_K40, active_agents=0)
        with pytest.raises(ValueError):
            agent_plan(kernel, TESLA_K40, active_agents=limit + 1)

    def test_maxwell_bind_overhead_exceeds_kepler(self):
        kernel = kernel_of(Dim3(64))
        kep = agent_plan(kernel, TESLA_K40)
        mxw = agent_plan(kernel, GTX980)
        assert mxw.agent_bind_overhead > kep.agent_bind_overhead

    def test_bypass_and_prefetch_flags(self):
        kernel = kernel_of(Dim3(64))
        plan = agent_plan(kernel, GTX570, bypass_streams=True,
                          prefetch_depth=3, scheme="custom")
        assert plan.bypass_streams
        assert plan.prefetch_depth == 3
        assert plan.scheme == "custom"

    def test_scheme_autonaming_with_bypass(self):
        kernel = kernel_of(Dim3(64))
        plan = agent_plan(kernel, GTX570, active_agents=1,
                          bypass_streams=True)
        assert plan.scheme == "CLU+TOT+BPS"


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 400))
def test_property_tasks_always_cover_grid(n):
    kernel = kernel_of(Dim3(n))
    plan = agent_plan(kernel, GTX570, X_PARTITION)
    flat = sorted(t for tasks in plan.sm_tasks for t in tasks)
    assert flat == list(range(n))
