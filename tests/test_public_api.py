"""Public API surface tests: the README quickstart must keep working."""

import pytest

import repro


class TestPublicSurface:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_version_line_names_both_versions(self):
        from repro.engine.job import ENGINE_VERSION
        line = repro.version_line()
        assert repro.__version__ in line
        assert ENGINE_VERSION in line

    def test_service_client_reexported(self):
        from repro.api import ServiceClient, ServiceError, connect
        client = connect(port=1)  # no I/O until a call happens
        assert isinstance(client, ServiceClient)
        assert issubclass(ServiceError, RuntimeError)

    def test_readme_quickstart(self):
        kernel = repro.workload("NN").kernel(scale=0.3, config=repro.GTX980)
        baseline = repro.simulate(kernel, repro.GTX980)
        clustered = repro.simulate(
            kernel, repro.GTX980,
            plan=repro.cluster(kernel, "CLU", gpu=repro.GTX980,
                               direction=repro.Y_PARTITION))
        assert clustered.speedup_over(baseline) > 1.0

    def test_platform_lookup(self):
        assert repro.platform("GTX1080") is repro.GTX1080

    def test_workload_sets(self):
        assert len(repro.table2_workloads()) == 23
        assert len(repro.figure3_workloads()) == 33
        assert len(repro.all_workloads()) == 40


class TestFacadeSimulate:
    def test_accepts_abbreviation_and_platform_name(self):
        metrics = repro.simulate("NN", "Tesla K40", scale=0.3)
        assert metrics.scheme == "BSL"
        assert metrics.gpu_name == "Tesla K40"

    def test_scheme_speeds_up_nn(self):
        base = repro.simulate("NN", repro.TESLA_K40, scale=0.3)
        clu = repro.simulate("NN", repro.TESLA_K40, scale=0.3, scheme="CLU")
        assert base.cycles / clu.cycles > 1.0

    def test_scheme_and_plan_are_exclusive(self):
        with pytest.raises(ValueError):
            repro.simulate("NN", repro.TESLA_K40, scale=0.3,
                           scheme="CLU", plan=repro.baseline_plan())

    def test_unknown_platform_and_scheme_raise(self):
        with pytest.raises(KeyError):
            repro.simulate("NN", "Voodoo2", scale=0.3)
        with pytest.raises(KeyError):
            repro.cluster("NN", "MAGIC", gpu=repro.TESLA_K40)

    def test_simulator_instance_is_reused(self):
        sim = repro.GpuSimulator(repro.TESLA_K40)
        metrics = repro.simulate("BS", sim, scale=0.3)
        assert metrics.gpu_name == repro.TESLA_K40.name

    def test_bad_types_raise(self):
        with pytest.raises(TypeError):
            repro.simulate(42, repro.TESLA_K40)
        with pytest.raises(TypeError):
            repro.simulate("NN", 42)


class TestFacadeEstimate:
    def test_estimate_is_rung_zero(self):
        guess = repro.estimate("NN", "Tesla K40", scale=0.3, scheme="CLU")
        assert isinstance(guess, repro.AnalyticEstimate)
        assert guess.fidelity == "analytic"
        assert guess.cycles > 0

    def test_simulate_fidelity_analytic_routes_to_estimate(self):
        via_fidelity = repro.simulate("NN", "Tesla K40", scale=0.3,
                                      scheme="CLU", fidelity="analytic")
        direct = repro.estimate("NN", "Tesla K40", scale=0.3, scheme="CLU")
        assert via_fidelity == direct

    def test_simulate_fidelity_reduced_halves_scale(self):
        reduced = repro.simulate("NN", "Tesla K40", scale=0.6,
                                 fidelity="reduced")
        half = repro.simulate("NN", "Tesla K40", scale=0.3)
        assert reduced.cycles == half.cycles

    def test_fidelity_ladder_exported(self):
        assert list(repro.FIDELITIES) == ["analytic", "reduced", "full"]
        assert repro.resolve_fidelity("full") is repro.FULL


class TestFacadeCluster:
    def test_bsl_is_baseline_plan(self):
        plan = repro.cluster("NN", "BSL", gpu=repro.TESLA_K40)
        assert plan.scheme == "BSL"

    def test_direction_defaults_to_analysis(self):
        kernel = repro.workload("NN").kernel(scale=0.3,
                                             config=repro.TESLA_K40)
        auto = repro.cluster(kernel, "CLU", gpu=repro.TESLA_K40)
        explicit = repro.cluster(
            kernel, "CLU", gpu=repro.TESLA_K40,
            direction=repro.analyze_direction(kernel).direction)
        assert auto.sm_tasks == explicit.sm_tasks

    def test_throttled_scheme_honours_explicit_agents(self):
        kernel = repro.workload("ATX").kernel(scale=0.3,
                                              config=repro.TESLA_K40)
        plan = repro.cluster(kernel, "CLU+TOT", gpu=repro.TESLA_K40,
                             active_agents=2)
        assert plan.active_agents == 2


class TestFacadeSweep:
    def test_default_runner_matches_direct_execution(self):
        from repro.engine import schemes_job
        job = schemes_job("BS", repro.TESLA_K40, scale=0.3, seed=0,
                          use_paper_agents=True, schemes=("BSL", "CLU"))
        (result,) = repro.sweep([job])
        direct = repro.simulate("BS", repro.TESLA_K40, scale=0.3)
        assert result.metrics["BSL"].cycles == direct.cycles
