"""Public API surface tests: the README quickstart must keep working."""

import repro


class TestPublicSurface:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart(self):
        wl = repro.workload("NN")
        kernel = wl.kernel(scale=0.3, config=repro.GTX980)
        sim = repro.GpuSimulator(repro.GTX980)
        baseline = repro.run_measured(sim, kernel)
        clustered = repro.run_measured(
            sim, kernel, repro.agent_plan(kernel, repro.GTX980,
                                          repro.Y_PARTITION))
        assert clustered.speedup_over(baseline) > 1.0

    def test_platform_lookup(self):
        assert repro.platform("GTX1080") is repro.GTX1080

    def test_workload_sets(self):
        assert len(repro.table2_workloads()) == 23
        assert len(repro.figure3_workloads()) == 33
        assert len(repro.all_workloads()) == 40
