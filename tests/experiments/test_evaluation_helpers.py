"""EvaluationSweep helper coverage on a tiny restricted sweep."""

import pytest

from repro.experiments.evaluation import run_evaluation
from repro.gpu.config import GTX570


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_evaluation(platforms=(GTX570,), groups=("algorithm",),
                          scale=0.3, use_paper_agents=True)


class TestSweepHelpers:
    def test_restricted_sweep_size(self, tiny_sweep):
        assert len(tiny_sweep.results) == 8  # algorithm group only

    def test_result_lookup(self, tiny_sweep):
        result = tiny_sweep.result(GTX570, "NN")
        assert result.workload == "NN"
        assert result.gpu == GTX570.name

    def test_missing_result_raises(self, tiny_sweep):
        with pytest.raises(KeyError):
            tiny_sweep.result(GTX570, "SYK")

    def test_best_clustered_speedup(self, tiny_sweep):
        best = tiny_sweep.best_clustered_speedup(GTX570, "NN")
        result = tiny_sweep.result(GTX570, "NN")
        assert best == max(result.speedup(s)
                           for s in ("CLU", "CLU+TOT", "CLU+TOT+BPS"))

    def test_unknown_group_rejected(self):
        with pytest.raises(KeyError):
            run_evaluation(platforms=(GTX570,), groups=("nonsense",),
                           scale=0.3)

    def test_scale_recorded(self, tiny_sweep):
        assert tiny_sweep.scale == 0.3
