"""The tenancy_study driver: matrix planning, invariants, rendering."""

from types import SimpleNamespace

import pytest

from repro.experiments.driver import get_driver
from repro.experiments.tenancy_study import (
    STUDY_MIXES, STUDY_POLICIES, TenancyCell, TenancyStudyResult,
    _assemble, _study_jobs, _study_matrix, run_tenancy_study)
from repro.experiments.driver import RunContext
from repro.gpu.config import EVALUATION_PLATFORMS


def _fake_report(slowdowns, l1=(0.5, 0.4), bound=(0.8, 0.7)):
    tenants = [
        SimpleNamespace(slowdown=s, l1_hit_rate=l, bound_hit_rate=b,
                        l1_hit_delta=0.01)
        for s, l, b in zip(slowdowns, l1, bound)
    ]
    return SimpleNamespace(
        unfairness=max(slowdowns) / min(slowdowns),
        makespan_cycles=1000.0, tenants=tenants)


class TestPlanning:
    def test_matrix_is_the_full_cross_product(self):
        cells = _study_matrix(STUDY_MIXES, STUDY_POLICIES)
        assert len(cells) == len(STUDY_MIXES) * len(STUDY_POLICIES)
        assert cells[0] == (STUDY_MIXES[0], STUDY_POLICIES[0])

    def test_jobs_are_cotenant_jobs(self):
        cells = _study_matrix(STUDY_MIXES[:1], STUDY_POLICIES)
        jobs = _study_jobs(cells, gpu="GTX980", scale=0.25, seed=0,
                           warmups=1, scheme="CLU")
        assert len(jobs) == len(STUDY_POLICIES)
        for job, (mix, policy) in zip(jobs, cells):
            assert job.kind == "cotenant"
            assert job.extra("policy") == policy
            tenants = [dict(pairs) for pairs in job.extra("tenants")]
            assert [t["workload"] for t in tenants] == list(mix)
            assert all(t["scheme"] == "CLU" for t in tenants)

    def test_driver_is_registered(self):
        driver = get_driver("tenancy_study")
        ctx = RunContext(platforms=EVALUATION_PLATFORMS, scale=1.0,
                         seed=0)
        jobs = driver.jobs(ctx)
        assert len(jobs) == len(STUDY_MIXES) * len(STUDY_POLICIES)
        assert all(j.kind == "cotenant" for j in jobs)

    def test_listed_in_the_cli_registry(self):
        from repro.experiments.__main__ import ARTIFACTS, ON_DEMAND
        assert "tenancy_study" in ARTIFACTS
        assert "tenancy_study" in ON_DEMAND  # excluded from run-all

    def test_unknown_policy_rejected_up_front(self):
        with pytest.raises(KeyError, match="unknown policy"):
            run_tenancy_study(mixes=(("NN", "HS"),),
                              policies=("time-sliced",))


class TestInvariants:
    def test_assemble_flattens_reports(self):
        cells = [(("NN", "HS"), "shared")]
        study = _assemble(cells, [_fake_report((2.0, 1.5))],
                          gpu="GTX980")
        cell = study.cell(("NN", "HS"), "shared")
        assert cell.slowdowns == (2.0, 1.5)
        assert cell.unfairness == pytest.approx(2.0 / 1.5)

    def test_violations_catch_bound_breaches(self):
        study = TenancyStudyResult(cells=[TenancyCell(
            mix=("NN", "HS"), policy="shared", unfairness=1.2,
            makespan_cycles=100.0, slowdowns=(1.2, 1.0),
            l1_hit_rates=(0.9, 0.3), bound_hit_rates=(0.8, 0.7),
            l1_hit_deltas=(0.0, 0.0))])
        problems = study.violations()
        assert len(problems) == 1
        assert "tenant 0" in problems[0]
        assert study.violations(tolerance=1.0) == []

    def test_isolation_regressions_compare_against_shared(self):
        def cell(policy, unfairness):
            return TenancyCell(
                mix=("NN", "HS"), policy=policy, unfairness=unfairness,
                makespan_cycles=100.0, slowdowns=(1.0, 1.0),
                l1_hit_rates=(0.5, 0.5), bound_hit_rates=(0.8, 0.8),
                l1_hit_deltas=(0.0, 0.0))

        fair = TenancyStudyResult(cells=[cell("shared", 2.0),
                                         cell("cluster-isolated", 1.5)])
        assert fair.isolation_regressions() == []
        unfair = TenancyStudyResult(cells=[cell("shared", 1.5),
                                           cell("cluster-isolated", 2.0)])
        assert len(unfair.isolation_regressions()) == 1

    def test_missing_shared_cell_is_not_a_regression(self):
        study = TenancyStudyResult(cells=[TenancyCell(
            mix=("NN", "HS"), policy="cluster-isolated", unfairness=9.0,
            makespan_cycles=100.0, slowdowns=(9.0, 1.0),
            l1_hit_rates=(0.5, 0.5), bound_hit_rates=(0.8, 0.8),
            l1_hit_deltas=(0.0, 0.0))])
        assert study.isolation_regressions() == []


class TestRendering:
    def test_render_has_the_oracle_column_and_flags_violations(self):
        good = _assemble([(("NN", "HS"), "shared")],
                         [_fake_report((2.0, 1.5))], gpu="GTX980")
        text = good.render()
        assert "Oracle bound" in text
        assert "Unfairness" in text
        assert "VIOLATIONS" not in text
        bad = _assemble([(("NN", "HS"), "shared")],
                        [_fake_report((2.0, 1.5), l1=(0.9, 0.9),
                                      bound=(0.1, 0.1))], gpu="GTX980")
        assert "VIOLATIONS" in bad.render()
