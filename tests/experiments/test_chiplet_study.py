"""chiplet_study driver tests (planning + a reduced end-to-end run)."""

import pytest

from repro.engine import default_runner
from repro.experiments.chiplet_study import (
    STUDY_CHIPLETS,
    STUDY_PLACEMENTS,
    STUDY_WORKLOADS,
    ChipletCell,
    run_chiplet_study,
)
from repro.experiments.driver import RunContext, get_driver


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestPlanning:
    def test_one_measure_job_per_cell(self):
        driver = get_driver("chiplet_study")
        jobs = driver.jobs(RunContext())
        # Per workload: one single-die baseline plus a cell for every
        # (multi-chiplet, placement) pair.
        per_workload = 1 + (len(STUDY_CHIPLETS) - 1) * len(STUDY_PLACEMENTS)
        assert len(jobs) == len(STUDY_WORKLOADS) * per_workload
        assert len({job.key for job in jobs}) == len(jobs)

    def test_study_pins_the_demonstration_pair(self):
        assert STUDY_WORKLOADS == ("HST", "BKP")
        assert STUDY_CHIPLETS[0] == 1  # baseline column must exist


class TestReducedRun:
    @pytest.fixture(scope="class")
    def study(self):
        runner = default_runner(jobs=1, cached=True, memo=True)
        return run_chiplet_study(("HST",), (1, 4),
                                 ("oblivious", "local-first"), runner=runner)

    def test_invariant_holds_and_locality_improves(self, study):
        assert study.violations() == []
        oblivious = study.cell("HST", 4, "oblivious")
        local = study.cell("HST", 4, "local-first")
        assert local.remote_fraction < oblivious.remote_fraction
        assert local.dram_remote <= oblivious.dram_remote

    def test_baseline_is_the_single_die_row(self, study):
        base = study.baseline("HST")
        assert base.chiplets == 1
        assert base.dram_remote == 0
        assert base.slowdown_over(base) == 1.0

    def test_render_tabulates_every_cell(self, study):
        text = study.render()
        assert "Chiplet study" in text
        assert "local-first" in text
        assert "VIOLATIONS" not in text

    def test_missing_cell_raises(self, study):
        with pytest.raises(KeyError):
            study.cell("HST", 8, "oblivious")
        with pytest.raises(KeyError):
            study.baseline("NN")

    def test_unknown_placement_rejected_before_any_simulation(self):
        with pytest.raises(KeyError, match="teleport"):
            run_chiplet_study(("HST",), (1, 2), ("teleport",))

    def test_violation_report_names_the_offending_cell(self):
        from repro.experiments.chiplet_study import ChipletStudyResult
        rigged = ChipletStudyResult(cells=[
            ChipletCell("HST", 1, "oblivious", 100.0, 10, 0, 0.0),
            ChipletCell("HST", 2, "oblivious", 110.0, 8, 2, 0.2),
            ChipletCell("HST", 2, "local-first", 120.0, 5, 5, 0.5),
        ])
        notes = rigged.violations()
        assert len(notes) == 1 and "HST x2" in notes[0]
        assert "VIOLATIONS" in rigged.render()
