"""CLI entry-point tests (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import _select_platforms, main
from repro.gpu.config import EVALUATION_PLATFORMS, GTX980


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep the CLI's .repro_cache out of the checkout and out of
    other tests: stale entries must never mask a code change here."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestPlatformSelection:
    def test_default_is_all(self):
        assert _select_platforms(None) == EVALUATION_PLATFORMS
        assert _select_platforms([]) == EVALUATION_PLATFORMS

    def test_by_product_name(self):
        assert _select_platforms(["GTX980"]) == (GTX980,)

    def test_by_architecture_name(self):
        chosen = _select_platforms(["Maxwell"])
        assert chosen == (GTX980,)

    def test_unknown_platform_exits(self):
        with pytest.raises(SystemExit):
            _select_platforms(["GTX9999"])


class TestMain:
    def test_table1_artifact(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig2_restricted_platform(self, capsys):
        assert main(["fig2", "--platforms", "Kepler"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K40" in out
        assert "GTX980" not in out.split("Figure 2")[1]

    def test_invalid_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_jobs_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])


class TestVersionFlag:
    def test_version_names_package_and_engine(self, capsys):
        import repro
        from repro.engine.job import ENGINE_VERSION

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert f"engine schema {ENGINE_VERSION}" in out


class TestProfileFlag:
    def test_profile_and_trace_artifacts_written(self, tmp_path, capsys):
        import json
        from repro.obs import validate_profile

        profile_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        assert main(["fig2", "--platforms", "Kepler", "--scale", "0.3",
                     "--profile", str(profile_path),
                     "--trace", str(trace_path)]) == 0

        summary = json.loads(profile_path.read_text())
        validate_profile(summary)
        assert summary["meta"]["label"] == "fig2"
        assert [p["name"] for p in summary["phases"]] == ["fig2"]
        assert summary["engine"]["executed"] > 0

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == summary["engine"]["executed"]

        out = capsys.readouterr().out
        assert "profile summary written" in out
        assert "chrome trace written" in out


class TestListFlag:
    def test_list_prints_registry_and_exits_zero(self, capsys):
        from repro.experiments.__main__ import ARTIFACTS

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "available artifacts:" in out
        for name in ARTIFACTS:
            assert name in out
        # Each driver contributes its one-line purpose, not a blank.
        lines = out.splitlines()
        start = lines.index("available artifacts:") + 1
        artifact_lines = lines[start:start + len(ARTIFACTS)]
        assert all(line.startswith("  ") for line in artifact_lines)
        assert all(len(line.split(None, 1)) == 2 for line in artifact_lines)
        # The tuner registries and the fidelity ladder print too.
        assert "tuner strategies:" in out
        assert "tuner objectives:" in out
        assert "fidelity rungs (cheapest first):" in out
        for name in ("grid", "hillclimb", "halving", "cycles",
                     "analytic", "reduced", "full"):
            assert name in out

    def test_list_ignores_other_validation(self, capsys):
        # --list short-circuits before artifact/knob validation runs.
        assert main(["--list", "--jobs", "0"]) == 0
        assert "available artifacts:" in capsys.readouterr().out


class TestTunerFlags:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["tuning_study", "--strategy", "annealing"])

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(["tuning_study", "--objective", "watts"])

    def test_bad_budget_rejected(self):
        with pytest.raises(SystemExit):
            main(["tuning_study", "--budget", "0"])

    def test_tuning_study_is_on_demand_only(self):
        from repro.experiments.__main__ import ARTIFACTS, ON_DEMAND

        assert "tuning_study" in ARTIFACTS
        assert "tuning_study" in ON_DEMAND

    def test_tuning_study_artifact(self, capsys):
        assert main(["tuning_study", "--platforms", "Kepler",
                     "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "Tuning study" in out
        assert "regression-free: True" in out
