"""Figure 12/13, scheduler-study and ablation driver tests.

The full sweep is the benchmark harness's job; these tests run reduced
matrices (one platform, reduced scale) and verify structure plus the
paper's direction on the strongest claims.
"""

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.evaluation import group_of, run_evaluation
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.scheduler_study import run_scheduler_study
from repro.gpu.config import TESLA_K40


@pytest.fixture(scope="module")
def kepler_sweep():
    return run_evaluation(platforms=(TESLA_K40,), scale=0.4,
                          use_paper_agents=True)


class TestEvaluationSweep:
    def test_covers_all_23_apps(self, kepler_sweep):
        assert len(kepler_sweep.results) == 23

    def test_group_geomeans_computable(self, kepler_sweep):
        for group in ("algorithm", "cache-line", "no-exploitable"):
            gm = kepler_sweep.group_geomean_speedup(TESLA_K40, group, "CLU")
            assert gm > 0

    def test_cache_line_group_wins_on_kepler(self, kepler_sweep):
        gm = kepler_sweep.group_geomean_speedup(TESLA_K40, "cache-line",
                                                "CLU+TOT")
        assert gm > 1.15

    def test_no_exploitable_group_flat(self, kepler_sweep):
        gm = kepler_sweep.group_geomean_speedup(TESLA_K40, "no-exploitable",
                                                "CLU")
        assert 0.9 <= gm <= 1.1

    def test_l2_reduction_for_cache_line(self, kepler_sweep):
        gm = kepler_sweep.group_geomean_l2(TESLA_K40, "cache-line",
                                           "CLU+TOT")
        assert gm < 0.7

    def test_group_of(self):
        assert group_of("MM") == "algorithm"
        assert group_of("SYK") == "cache-line"
        assert group_of("BS") == "no-exploitable"
        with pytest.raises(KeyError):
            group_of("???")


class TestFigureRenderers:
    def test_fig12_renders(self, kepler_sweep):
        text = run_fig12(sweep=kepler_sweep).render()
        assert "Figure 12" in text
        assert "Kepler" in text
        assert "G-M" in text

    def test_fig13_renders(self, kepler_sweep):
        result = run_fig13(sweep=kepler_sweep)
        text = result.render()
        assert "Figure 13" in text
        assert "HT_RTE" in text

    def test_fig13_best_reduction_positive_for_cache_line(self, kepler_sweep):
        result = run_fig13(sweep=kepler_sweep)
        assert result.best_l2_reduction(TESLA_K40, "cache-line") > 0.3


class TestSchedulerStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_scheduler_study(abbr="NN")

    def test_round_robin_first_turnaround(self, study):
        rr = [o for o in study.observations if o.scheduler == "round-robin"]
        assert all(o.first_turnaround_rr for o in rr)

    def test_non_rr_schedulers_break_the_assumption(self, study):
        others = [o for o in study.observations
                  if o.scheduler != "round-robin"]
        assert any(not o.first_turnaround_rr for o in others)

    def test_rd_strong_under_rr_weak_otherwise(self, study):
        by_name = {s.scheduler: s for s in study.sensitivity}
        assert by_name["round-robin"].rd_speedup > 1.2
        assert by_name["randomized"].rd_speedup < \
            by_name["round-robin"].rd_speedup - 0.2

    def test_clu_always_effective(self, study):
        # agent-based clustering never collapses like RD does
        for s in study.sensitivity:
            assert s.clu_speedup > 0.95

    def test_renders(self, study):
        text = study.render()
        assert "S3.1" in text and "S5.2" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def ablations(self):
        return run_ablations()

    def test_all_studies_present(self, ablations):
        studies = {row.study for row in ablations.rows}
        assert "MM indexing" in studies
        assert "KMN throttling" in studies
        assert "NN throttling" in studies
        assert "IMD L1 size" in studies
        assert "IMD L1/Tex sectoring" in studies

    def test_nn_prefers_maximum_agents(self, ablations):
        rows = ablations.rows_for("NN throttling")
        degrees = [int(r.configuration.split()[0]) for r in rows]
        speedups = [r.speedup for r in rows]
        assert speedups[degrees.index(max(degrees))] == max(speedups)

    def test_tile_indexing_pays_overhead(self, ablations):
        rows = {r.configuration: r for r in ablations.rows_for("MM indexing")}
        assert rows["tile-wise 4x4"].speedup <= \
            rows["row-major (Y-P)"].speedup + 0.05

    def test_sectoring_hurts_l2_traffic(self, ablations):
        rows = {r.configuration: r
                for r in ablations.rows_for("IMD L1/Tex sectoring")}
        assert rows["unsectored"].l2_normalized <= \
            rows["2 sectors (real)"].l2_normalized

    def test_renders(self, ablations):
        assert "Section 5.2 ablations" in ablations.render()
