"""Tests for the cheap experiment drivers: Table 1, Figure 2, Table 2,
Figure 3."""

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.gpu.config import EVALUATION_PLATFORMS


class TestTable1:
    def test_four_rows_in_order(self):
        result = run_table1()
        assert [row[0] for row in result.rows] == \
            ["GTX570", "Tesla K40", "GTX980", "GTX1080"]

    def test_renders(self):
        text = run_table1().render()
        assert "Table 1" in text
        assert "GTX980" in text
        assert "128B" in text and "32B" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2()

    def test_covers_all_platforms(self, result):
        assert len(result.platforms) == 4

    def test_temporal_locality_on_every_platform(self, result):
        # the paper's claim (1): temporal inter-CTA locality on L1
        for p in result.platforms:
            assert p.temporal_locality_demonstrated(), p.gpu.name

    def test_spatial_locality_on_every_platform(self, result):
        # the paper's claim (2): spatial inter-CTA locality on L1
        for p in result.platforms:
            assert p.spatial_locality_demonstrated(), p.gpu.name

    def test_first_turnaround_latency_ordering(self, result):
        for p in result.platforms:
            means = p.default_turnaround_means
            assert means[0] > 3 * min(v for t, v in means.items() if t > 0)

    def test_renders(self, result):
        text = result.render()
        assert "Figure 2" in text
        for gpu in EVALUATION_PLATFORMS:
            assert gpu.name in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_23_rows(self, result):
        assert len(result.rows) == 23

    def test_model_matches_paper_majority(self, result):
        assert result.match_fraction >= 0.75

    def test_renders_with_quadruples(self, result):
        text = result.render()
        assert "Table 2" in text
        assert "6/8/8/8" in text  # KMN's CTAs/SM quadruple
        assert "Y-P" in text and "X-P" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(scale=0.4, max_ctas=100)

    def test_33_profiles_in_axis_order(self, result):
        assert len(result.profiles) == 33
        assert result.profiles[0].kernel_name == "MM"
        assert result.profiles[-1].kernel_name == "KMN"

    def test_average_in_papers_band(self, result):
        assert 0.25 <= result.average_inter_fraction <= 0.60

    def test_streaming_apps_near_zero_inter(self, result):
        for abbr in ("BS", "SAD", "SP"):
            assert result.inter_fraction(abbr) < 0.05

    def test_fractions_are_complementary(self, result):
        for p in result.profiles:
            if p.reuse_requests:
                total = p.inter_reuse_fraction + p.intra_reuse_fraction
                assert total == pytest.approx(1.0)

    def test_renders(self, result):
        text = result.render()
        assert "Figure 3" in text and "AVG" in text
