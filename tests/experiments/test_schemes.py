"""Scheme-builder tests: the six Figure-12 configurations."""

import pytest

from repro.experiments.schemes import (
    SCHEME_ORDER, build_scheme_plans, optimal_agents, partition_for,
    run_all_schemes)
from repro.gpu.config import TESLA_K40
from repro.gpu.simulator import GpuSimulator
from repro.workloads.registry import workload


class TestPartitionFor:
    def test_uses_table2_direction(self):
        wl = workload("MM")
        assert partition_for(wl, wl.kernel()).name == "Y-P"
        wl = workload("KMN")
        assert partition_for(wl, wl.kernel()).name == "X-P"

    def test_falls_back_to_analysis_for_extras(self):
        wl = workload("COR")  # no Table-2 row
        part = partition_for(wl, wl.kernel(scale=0.5))
        assert part.name in ("X-P", "Y-P")


class TestOptimalAgents:
    def test_paper_value_clamped_to_occupancy(self):
        wl = workload("KMN")
        kernel = wl.kernel(config=TESLA_K40)
        opt = optimal_agents(wl, kernel, TESLA_K40, use_paper_value=True)
        assert opt == 1  # Table 2: KMN optimal agents = 1 on Kepler

    def test_voted_value_in_range(self):
        wl = workload("DCT")
        kernel = wl.kernel(scale=0.4, config=TESLA_K40)
        sim = GpuSimulator(TESLA_K40)
        opt = optimal_agents(wl, kernel, TESLA_K40, sim)
        from repro.gpu.occupancy import max_ctas_per_sm
        assert 1 <= opt <= max_ctas_per_sm(TESLA_K40, kernel)


class TestBuildSchemePlans:
    def test_all_six_schemes(self):
        wl = workload("NN")
        kernel = wl.kernel(scale=0.4, config=TESLA_K40)
        plans = build_scheme_plans(wl, kernel, TESLA_K40,
                                   use_paper_agents=True)
        assert set(plans) == set(SCHEME_ORDER)
        assert plans["BSL"].mode == "scheduled"
        assert plans["RD"].mode == "scheduled"
        for scheme in ("CLU", "CLU+TOT", "CLU+TOT+BPS", "PFH+TOT"):
            assert plans[scheme].mode == "placed", scheme
        assert plans["CLU+TOT+BPS"].bypass_streams
        assert plans["PFH+TOT"].prefetch_depth > 0


class TestRunAllSchemes:
    @pytest.fixture(scope="class")
    def results(self):
        return run_all_schemes(workload("NN"), TESLA_K40, scale=0.4,
                               use_paper_agents=True)

    def test_metrics_for_every_scheme(self, results):
        assert set(results.metrics) == set(SCHEME_ORDER)
        for scheme, metrics in results.metrics.items():
            assert metrics.cycles > 0, scheme
            assert metrics.scheme == scheme

    def test_baseline_speedup_is_one(self, results):
        assert results.speedup("BSL") == pytest.approx(1.0)
        assert results.l2_normalized("BSL") == pytest.approx(1.0)

    def test_nn_clustering_wins_on_kepler(self, results):
        assert results.speedup("CLU") > 1.1
        assert results.l2_normalized("CLU") < 0.7

    def test_occupancy_delta(self, results):
        delta = results.occupancy_delta("CLU+TOT")
        assert -1.0 <= delta <= 1.0
