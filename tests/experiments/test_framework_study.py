"""Framework study tests (reduced scale)."""

import pytest

from repro.experiments.framework_study import run_framework_study
from repro.gpu.config import TESLA_K40


@pytest.fixture(scope="module")
def study():
    return run_framework_study(TESLA_K40, scale=0.4)


class TestFrameworkStudy:
    def test_covers_all_23_apps(self, study):
        assert len(study.cases) == 23

    def test_exploitability_accuracy(self, study):
        # the binary decision that selects the optimization path
        assert study.exploitability_accuracy >= 0.7

    def test_partition_agreement_with_table2(self, study):
        assert study.partition_accuracy >= 0.85

    def test_framework_never_hurts(self, study):
        assert study.never_hurts

    def test_streaming_apps_never_classified_exploitable(self, study):
        for case in study.cases:
            if case.workload.abbr in ("BS", "MON", "SAD", "DXT"):
                assert not case.decision.category.exploitable, \
                    case.workload.abbr

    def test_cache_line_core_detected(self, study):
        hits = [c for c in study.cases
                if c.workload.abbr in ("SYK", "S2K", "ATX", "MVT", "BC")
                and c.decision.category.exploitable]
        assert len(hits) >= 4

    def test_renders(self, study):
        text = study.render()
        assert "Framework study" in text
        assert "exploitability accuracy" in text
