"""Figure-4 taxonomy tests: each locality source shows its signature."""

import pytest

from repro.experiments.fig4_taxonomy import run_fig4


@pytest.fixture(scope="module")
def result():
    return run_fig4()


class TestTaxonomy:
    def test_five_rows(self, result):
        assert [r.label for r in result.rows] == ["A", "B", "C", "D", "E"]

    def test_algorithm_pattern_is_inter_and_exploitable(self, result):
        row = result.row("A")
        assert row.inter_fraction > 0.6
        assert row.clu_speedup > 1.2
        assert row.l2_normalized < 0.6

    def test_cache_line_pattern_invisible_at_sector_granularity(self, result):
        # Fig. 4-B's reuse lives *between* 32B sectors of one 128B line,
        # so the request-level quantifier sees none of it...
        row = result.row("B")
        assert row.inter_fraction == 0.0
        # ...yet clustering on a 128B-line machine recovers it fully
        assert row.clu_speedup > 1.3
        assert row.l2_normalized < 0.5

    def test_data_pattern_has_locality_but_unexploitable(self, result):
        row = result.row("C")
        assert row.inter_fraction > 0.5       # locality exists...
        assert 0.9 <= row.clu_speedup <= 1.1  # ...but is accidental

    def test_write_pattern_unexploitable(self, result):
        row = result.row("D")
        assert 0.9 <= row.clu_speedup <= 1.1

    def test_streaming_pattern_flat(self, result):
        row = result.row("E")
        assert row.inter_fraction == 0.0
        assert 0.9 <= row.clu_speedup <= 1.1
        assert row.l2_normalized == pytest.approx(1.0, abs=0.05)

    def test_unknown_label(self, result):
        with pytest.raises(KeyError):
            result.row("Z")

    def test_renders(self, result):
        assert "Figure 4 taxonomy" in result.render()
