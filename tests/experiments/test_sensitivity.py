"""Sensitivity-study tests (reduced grid)."""

import pytest

from repro.experiments.sensitivity import SensitivityCell, run_sensitivity


@pytest.fixture(scope="module")
def result():
    return run_sensitivity(scale=0.4, hiding_caps=(8.0, 20.0),
                           join_staggers=(3, 12))


class TestSensitivity:
    def test_grid_size(self, result):
        assert len(result.cells) == 4

    def test_all_conclusions_hold(self, result):
        assert result.all_hold

    def test_renders(self, result):
        assert "conclusions hold" in result.render()


class TestCellLogic:
    def test_holding_cell(self):
        cell = SensitivityCell(8, 6, nn_fermi=1.3, atx_fermi=1.5,
                               atx_maxwell=1.0, bs_fermi=1.0)
        assert cell.conclusions_hold

    def test_flat_nn_breaks_it(self):
        cell = SensitivityCell(8, 6, nn_fermi=1.0, atx_fermi=1.5,
                               atx_maxwell=1.0, bs_fermi=1.0)
        assert not cell.conclusions_hold

    def test_maxwell_gain_breaks_it(self):
        # ATX gaining on Maxwell would contradict the line-size story
        cell = SensitivityCell(8, 6, nn_fermi=1.3, atx_fermi=1.5,
                               atx_maxwell=1.4, bs_fermi=1.0)
        assert not cell.conclusions_hold
