"""Report rendering tests."""

import pytest

from repro.experiments.report import (
    bar, format_percent, format_speedup, format_table)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_numeric_right_alignment(self):
        text = format_table(["col"], [[5], [12345]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("    5")

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestScalars:
    def test_percent(self):
        assert format_percent(0.456) == "45.6%"

    def test_speedup(self):
        assert format_speedup(1.459) == "1.46x"

    def test_bar_scales(self):
        assert bar(1.0, scale=10) == "#" * 10
        assert bar(0.5, scale=10) == "#" * 5
        assert bar(0.0) == ""
        assert bar(2.0, scale=10, maximum=1.0) == "#" * 10
