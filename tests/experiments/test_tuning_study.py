"""tuning_study driver tests (planning + report; execution is tiny)."""

import pytest

from repro.experiments.driver import RunContext, get_driver
from repro.experiments.tuning_study import STUDY_WORKLOADS
from repro.gpu.config import TESLA_K40


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture()
def ctx():
    return RunContext(platforms=(TESLA_K40,), tune_strategy="hillclimb",
                      tune_budget=6, tune_objective="cycles")


class TestPlanning:
    def test_one_tune_job_per_cell(self, ctx):
        driver = get_driver("tuning_study")
        jobs = driver.jobs(ctx)
        assert len(jobs) == len(STUDY_WORKLOADS)
        assert all(job.kind == "tune" for job in jobs)
        extras = dict(jobs[0].extras)
        assert extras["strategy"] == "hillclimb"
        assert extras["budget"] == 6

    def test_study_covers_each_evaluation_group(self):
        # NN: algorithm locality, ATX: cache-line, BS: no-exploitable.
        assert STUDY_WORKLOADS == ("NN", "ATX", "BS")


class TestReport:
    def test_render_flags_regressions(self, ctx):
        driver = get_driver("tuning_study")
        runner_results = []
        from repro.engine import default_runner
        runner = default_runner(jobs=1, cached=True, memo=True)
        runner_results = runner.run(driver.jobs(ctx))
        study = driver.render(ctx, runner_results)
        assert study.regression_free
        text = study.render()
        assert "Tuning study" in text
        assert "regression-free: True" in text
        for workload in STUDY_WORKLOADS:
            assert workload in text
