"""Driver protocol tests: uniform dispatch must cover every artifact."""

from repro.engine import SimJob, SweepRunner
from repro.experiments.driver import (
    DRIVERS,
    ExperimentDriver,
    RunContext,
    driver_names,
    get_driver,
    run_driver,
)
from repro.experiments.evaluation import run_evaluation
from repro.gpu.config import TESLA_K40

import pytest

SMALL = RunContext(platforms=(TESLA_K40,), scale=0.3, seed=0,
                   use_paper_agents=True)


class TestRegistry:
    def test_every_artifact_registers_a_driver(self):
        # registration order follows module import order, which varies
        # across test sessions — assert membership, not order
        assert set(driver_names()) == {
            "ablations", "fig2", "fig3", "fig4", "fig12", "fig13",
            "framework", "scheduler", "sensitivity", "table1", "table2",
            "tuning_study", "chiplet_study", "tenancy_study"}

    def test_registered_objects_satisfy_the_protocol(self):
        driver_names()  # force _load_all
        for name, driver in DRIVERS.items():
            assert isinstance(driver, ExperimentDriver), name
            assert driver.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            get_driver("fig99")


class TestPlanning:
    def test_jobs_are_engine_jobs_and_planning_is_deterministic(self):
        for name in driver_names():
            driver = get_driver(name)
            batch = driver.jobs(SMALL)
            assert all(isinstance(job, SimJob) for job in batch), name
            again = [job.key for job in driver.jobs(SMALL)]
            assert [job.key for job in batch] == again, name

    def test_fig12_and_fig13_share_the_evaluation_matrix(self):
        fig12 = {job.key for job in get_driver("fig12").jobs(SMALL)}
        fig13 = {job.key for job in get_driver("fig13").jobs(SMALL)}
        assert fig12 and fig12 == fig13

    def test_static_drivers_plan_empty_batches(self):
        for name in ("table1", "fig4"):
            assert get_driver(name).jobs(SMALL) == []


class TestRoundTrip:
    def test_fig12_render_matches_run_evaluation(self):
        from repro.experiments.fig12 import Fig12Result
        report = run_driver("fig12", SMALL)
        direct = run_evaluation(platforms=(TESLA_K40,), scale=0.3, seed=0,
                                use_paper_agents=True)
        assert report.render() == Fig12Result(sweep=direct).render()

    def test_memoizing_runner_serves_fig13_from_fig12(self):
        runner = SweepRunner(memo=True)
        run_driver("fig12", SMALL, runner=runner)
        executed_after_fig12 = runner.stats.executed
        run_driver("fig13", SMALL, runner=runner)
        assert runner.stats.executed == executed_after_fig12

    def test_table1_renders_without_jobs(self):
        report = run_driver("table1", SMALL)
        assert "Tesla K40" in report.render()
