"""Workload-framework unit tests: Table2Row, Workload, trace helpers."""

import pytest

from repro.gpu.config import Architecture, GTX570, GTX980
from repro.kernels.access import coalesce
from repro.kernels.kernel import AddressSpace, Dim3, KernelSpec, LocalityCategory
from repro.workloads.base import (
    ARCH_ORDER, Table2Row, Workload, irregular_reads, object_array_reads,
    scaled, skewed_read_write, stream_rows, tile_reads)


def make_row():
    return Table2Row(warps_per_cta=8, ctas_per_sm=(6, 8, 8, 8),
                     registers=(14, 17, 16, 18), smem_bytes=0,
                     partition="X-P", opt_agents=(1, 1, 1, 1),
                     suite="Rodinia")


class TestTable2Row:
    def test_arch_order(self):
        assert ARCH_ORDER == (Architecture.FERMI, Architecture.KEPLER,
                              Architecture.MAXWELL, Architecture.PASCAL)

    def test_per_arch_accessors(self):
        row = make_row()
        assert row.registers_for(Architecture.FERMI) == 14
        assert row.ctas_for(Architecture.MAXWELL) == 8
        assert row.opt_agents_for(Architecture.PASCAL) == 1


class TestWorkloadWrapper:
    def make_workload(self):
        def build(scale):
            return KernelSpec(name="W", grid=Dim3(scaled(20, scale)),
                              block=Dim3(256),
                              trace=lambda bx, by, bz: [],
                              regs_per_thread=99)
        return Workload(abbr="W", name="w", description="test",
                        category=LocalityCategory.ALGORITHM, builder=build,
                        table2=make_row())

    def test_kernel_applies_category(self):
        wl = self.make_workload()
        assert wl.kernel().category is LocalityCategory.ALGORITHM

    def test_kernel_specializes_registers(self):
        wl = self.make_workload()
        assert wl.kernel(config=GTX570).regs_per_thread == 14
        assert wl.kernel(config=GTX980).regs_per_thread == 16
        assert wl.kernel().regs_per_thread == 99  # builder default

    def test_scale_validation(self):
        wl = self.make_workload()
        with pytest.raises(ValueError):
            wl.kernel(scale=-1)

    def test_probe_is_quarter_scale(self):
        wl = self.make_workload()
        assert wl.probe_kernel().n_ctas == 5


class TestScaled:
    def test_rounding(self):
        assert scaled(10, 0.5) == 5
        assert scaled(10, 0.26) == 3

    def test_minimum(self):
        assert scaled(10, 0.01) == 1
        assert scaled(10, 0.01, minimum=4) == 4


@pytest.fixture
def array():
    return AddressSpace().alloc("A", 64, 64)


class TestStreamRows:
    def test_rows_and_chunks(self, array):
        accesses = stream_rows(array, 2, 3, 64)
        assert len(accesses) == 6  # 3 rows x 2 chunks of 32 words
        assert all(a.is_stream for a in accesses)
        assert all(not a.is_write for a in accesses)
        assert accesses[0].base == array.addr(2, 0)

    def test_write_variant(self, array):
        accesses = stream_rows(array, 0, 1, 32, is_write=True)
        assert all(a.is_write for a in accesses)

    def test_partial_tail_chunk(self, array):
        accesses = stream_rows(array, 0, 1, 40)
        assert accesses[-1].lanes == 8


class TestTileReads:
    def test_covers_requested_tile(self, array):
        accesses = tile_reads(array, 1, 2, 0, 32)
        assert len(accesses) == 2
        assert accesses[0].base == array.addr(1, 0)
        assert accesses[1].base == array.addr(2, 0)

    def test_clips_rows_outside_array(self, array):
        accesses = tile_reads(array, 62, 5, 0, 32)
        assert len(accesses) == 2  # rows 62, 63 only

    def test_negative_row_clipped(self, array):
        accesses = tile_reads(array, -2, 3, 0, 32)
        assert len(accesses) == 1  # row 0 only

    def test_write_tile(self, array):
        accesses = tile_reads(array, 0, 1, 0, 32, is_write=True)
        assert accesses[0].is_write


class TestObjectArrayReads:
    def test_object_straddle(self, array):
        # 96B objects straddle 128B lines, never 32B lines
        accesses = object_array_reads(array, 0, 32, 96)
        segments_128 = set()
        for a in accesses:
            segments_128.update(coalesce(a, 128))
        # 32 objects x 96B = 3072B = 24 x 128B lines
        assert len(segments_128) == 24

    def test_word_count(self, array):
        accesses = object_array_reads(array, 0, 32, 96)
        assert len(accesses) == 96 // 4  # one access per object word


class TestIrregularReads:
    def test_deterministic(self, array):
        a = irregular_reads(array, seed=3, count=10)
        b = irregular_reads(array, seed=3, count=10)
        assert a == b

    def test_different_seeds_differ(self, array):
        assert irregular_reads(array, 1, 10) != irregular_reads(array, 2, 10)

    def test_hot_fraction_concentrates(self, array):
        accesses = irregular_reads(array, seed=0, count=400,
                                   hot_fraction=0.9, hot_rows=2)
        hot_end = array.addr(2, 0)
        hot = sum(1 for a in accesses if a.base < hot_end)
        assert hot > 250

    def test_single_lane_accesses(self, array):
        for access in irregular_reads(array, 0, 20):
            assert access.lanes == 1


class TestSkewedReadWrite:
    def test_read_then_shifted_write(self, array):
        accesses = skewed_read_write(array, 5, 32, skew_words=1)
        reads = [a for a in accesses if not a.is_write]
        writes = [a for a in accesses if a.is_write]
        assert len(reads) == 1 and len(writes) == 1
        assert writes[0].base - reads[0].base == 4

    def test_write_overlaps_read_lines(self, array):
        accesses = skewed_read_write(array, 0, 32, skew_words=1)
        read_lines = set(coalesce(accesses[0], 128))
        write_lines = set(coalesce(accesses[1], 128))
        assert read_lines & write_lines  # the Fig. 4-(D) conflict
