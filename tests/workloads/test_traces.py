"""Trace generator tests: every workload emits a valid, deterministic,
in-bounds access stream at any scale.
"""

import pytest

from repro.gpu.config import GTX570, GTX980
from repro.kernels.access import WarpAccess
from repro.workloads.registry import all_workloads, workload

SAMPLE_CTAS = 6


@pytest.mark.parametrize("wl", all_workloads(), ids=lambda w: w.abbr)
class TestEveryWorkload:
    def test_builds_at_default_scale(self, wl):
        kernel = wl.kernel()
        assert kernel.n_ctas >= 1
        assert kernel.name == wl.abbr

    def test_traces_nonempty_and_wellformed(self, wl):
        kernel = wl.kernel(scale=0.5)
        for v in range(min(SAMPLE_CTAS, kernel.n_ctas)):
            trace = kernel.cta_trace(v)
            assert len(trace) > 0
            for access in trace:
                assert isinstance(access, WarpAccess)
                assert access.base >= 0
                assert 1 <= access.lanes <= 32
                assert access.size > 0
                assert access.stride >= 0

    def test_traces_deterministic(self, wl):
        kernel = wl.kernel(scale=0.5)
        v = min(3, kernel.n_ctas - 1)
        assert kernel.cta_trace(v) == kernel.cta_trace(v)

    def test_scale_changes_grid(self, wl):
        small = wl.kernel(scale=0.25)
        full = wl.kernel(scale=1.0)
        assert small.n_ctas <= full.n_ctas

    def test_last_cta_trace_valid(self, wl):
        kernel = wl.kernel(scale=0.5)
        trace = kernel.cta_trace(kernel.n_ctas - 1)
        assert len(trace) > 0

    def test_category_attached(self, wl):
        kernel = wl.kernel(scale=0.5)
        assert kernel.category is wl.category

    def test_probe_kernel_smaller(self, wl):
        probe = wl.probe_kernel()
        assert probe.n_ctas <= wl.kernel().n_ctas


class TestArchSpecialization:
    def test_registers_specialized_per_architecture(self):
        wl = workload("NN")
        fermi_kernel = wl.kernel(config=GTX570)
        maxwell_kernel = wl.kernel(config=GTX980)
        assert fermi_kernel.regs_per_thread == 21
        assert maxwell_kernel.regs_per_thread == 37

    def test_no_config_keeps_builder_default(self):
        kernel = workload("NN").kernel()
        assert kernel.regs_per_thread == 21  # builder default = Fermi value

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            workload("NN").kernel(scale=0.0)
        with pytest.raises(ValueError):
            workload("NN").kernel(scale=5.0)


class TestStructuralExpectations:
    def test_streaming_apps_tag_streams(self):
        from repro.core.bypass import stream_access_fraction
        for abbr in ("BS", "SAD", "DXT", "MON"):
            assert stream_access_fraction(workload(abbr).kernel(0.5)) > 0.9

    def test_algorithm_apps_have_shared_data(self):
        """Some address is touched by more than one CTA."""
        from repro.kernels.access import coalesce
        for abbr in ("KMN", "NN", "IMD", "BKP", "HS"):
            kernel = workload(abbr).kernel(scale=0.5)
            seen = {}
            shared = False
            for v in range(min(40, kernel.n_ctas)):
                for access in kernel.cta_trace(v):
                    for seg in coalesce(access, 128):
                        if seg in seen and seen[seg] != v:
                            shared = True
                        seen.setdefault(seg, v)
                if shared:
                    break
            assert shared, abbr

    def test_streaming_apps_have_no_cross_cta_sharing(self):
        from repro.kernels.access import coalesce
        for abbr in ("BS", "SAD", "DXT"):
            kernel = workload(abbr).kernel(scale=0.5)
            owners = {}
            for v in range(min(40, kernel.n_ctas)):
                for access in kernel.cta_trace(v):
                    for seg in coalesce(access, 32):
                        assert owners.setdefault(seg, v) == v, abbr

    def test_warps_per_cta_match_table2(self):
        for wl in all_workloads():
            if wl.table2 is None:
                continue
            kernel = wl.kernel(scale=0.5)
            assert kernel.warps_per_cta == wl.table2.warps_per_cta, wl.abbr

    @staticmethod
    def _cross_cta_sharing(kernel, segment, max_ctas=12):
        from repro.kernels.access import coalesce
        owners = {}
        shared = False
        for v in range(min(max_ctas, kernel.n_ctas)):
            for access in kernel.cta_trace(v):
                if access.is_stream or access.is_write:
                    continue
                for seg in coalesce(access, segment):
                    if owners.setdefault(seg, v) != v:
                        shared = True
        return shared

    def test_cacheline_apps_share_128b_lines(self):
        """Fig. 4-(B): cross-CTA sharing exists at 128B granularity."""
        for abbr in ("SYK", "S2K", "ATX", "MVT", "BC"):
            kernel = workload(abbr).kernel(scale=0.5)
            assert self._cross_cta_sharing(kernel, 128), abbr

    def test_syrk_has_no_32b_sharing(self):
        """...and vanishes at 32B sectors for the pure column-chunk
        kernels (SYK has no shared vector), which is why the effect is
        Fermi/Kepler-only."""
        kernel = workload("SYK").kernel(scale=0.5)
        assert not self._cross_cta_sharing(kernel, 32)
