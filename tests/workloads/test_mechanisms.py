"""Per-application mechanism tests: each workload's locality source
behaves as its Figure-4 category prescribes when simulated.
"""

import pytest

from repro.core.agent import agent_plan
from repro.experiments.schemes import partition_for
from repro.gpu.config import GTX570, GTX980, TESLA_K40
from repro.gpu.simulator import GpuSimulator, simulate
from repro.workloads.registry import workload


def clustered_vs_baseline(abbr, gpu, scale=0.5, active_agents=None):
    wl = workload(abbr)
    kernel = wl.kernel(scale=scale, config=gpu)
    part = partition_for(wl, kernel)
    sim = GpuSimulator(gpu)
    base = simulate(sim, kernel)
    plan = agent_plan(kernel, gpu, part, active_agents=active_agents)
    clu = simulate(sim, kernel, plan)
    return base, clu


class TestAlgorithmMechanisms:
    def test_nn_weight_reuse_lands_in_l1(self):
        base, clu = clustered_vs_baseline("NN", TESLA_K40)
        assert clu.l1_hit_rate > base.l1_hit_rate + 0.05
        assert clu.l2_transactions < 0.7 * base.l2_transactions

    def test_imd_window_overlap_recovered(self):
        base, clu = clustered_vs_baseline("IMD", TESLA_K40)
        assert clu.l2_transactions < 0.5 * base.l2_transactions

    def test_hs_halo_reuse_on_fermi(self):
        base, clu = clustered_vs_baseline("HS", GTX570)
        assert clu.l2_transactions < 0.8 * base.l2_transactions

    def test_bkp_input_slices_shared(self):
        base, clu = clustered_vs_baseline("BKP", GTX980)
        assert clu.l2_transactions < 0.8 * base.l2_transactions


class TestCacheLineMechanisms:
    @pytest.mark.parametrize("abbr", ["SYK", "ATX", "MVT", "BC"])
    def test_line_spill_recovered_on_fermi_only(self, abbr):
        base_f, clu_f = clustered_vs_baseline(abbr, GTX570)
        base_m, clu_m = clustered_vs_baseline(abbr, GTX980)
        fermi_ratio = clu_f.l2_transactions / base_f.l2_transactions
        maxwell_ratio = clu_m.l2_transactions / base_m.l2_transactions
        assert fermi_ratio < 0.7, f"{abbr}: Fermi should recover spill"
        assert maxwell_ratio > 0.9, f"{abbr}: Maxwell has no spill"


class TestWriteMechanism:
    def test_nw_write_evictions_fire(self):
        wl = workload("NW")
        kernel = wl.kernel(scale=0.5, config=TESLA_K40)
        metrics = GpuSimulator(TESLA_K40).run(kernel)
        assert metrics.l1.write_evictions > 0

    def test_nw_clustering_cannot_recover_the_reuse(self):
        base, clu = clustered_vs_baseline("NW", TESLA_K40)
        assert 0.9 <= clu.l2_transactions / base.l2_transactions <= 1.1


class TestStreamingMechanism:
    @pytest.mark.parametrize("abbr", ["BS", "SAD", "DXT"])
    def test_traffic_is_mandatory(self, abbr):
        base, clu = clustered_vs_baseline(abbr, GTX980)
        assert clu.l2_transactions == pytest.approx(base.l2_transactions,
                                                    rel=0.02)


class TestDataMechanism:
    def test_btr_hot_root_hits_everywhere(self):
        wl = workload("BTR")
        kernel = wl.kernel(scale=0.5, config=TESLA_K40)
        metrics = GpuSimulator(TESLA_K40).run(kernel)
        # the root/top levels are hot by accident of the data
        assert metrics.l1_hit_rate > 0.1

    def test_bfs_scattered_writes_present(self):
        wl = workload("BFS")
        kernel = wl.kernel(scale=0.5, config=TESLA_K40)
        metrics = GpuSimulator(TESLA_K40).run(kernel)
        assert metrics.l2_write_transactions > 0


class TestThrottlingMechanism:
    def test_kmn_centroids_thrash_at_full_agents_on_fermi(self):
        """KMN's Table-2 signature: the centroid table survives at one
        agent and thrashes at the maximum."""
        wl = workload("KMN")
        kernel = wl.kernel(scale=0.5, config=GTX570)
        sim = GpuSimulator(GTX570)
        part = partition_for(wl, kernel)
        full = simulate(sim, kernel, agent_plan(kernel, GTX570, part))
        one = simulate(sim, kernel,
                       agent_plan(kernel, GTX570, part, active_agents=1))
        assert one.l1_hit_rate > full.l1_hit_rate
        assert one.l2_transactions < full.l2_transactions
