"""Registry tests: the paper's application sets, orders and metadata."""

import pytest

from repro.kernels.kernel import LocalityCategory
from repro.workloads.registry import (
    EVALUATION_GROUPS, FIGURE3_ORDER, REGISTRY, TABLE2_ORDER, all_workloads,
    by_category, figure3_workloads, table2_workloads, workload)


class TestSets:
    def test_table2_has_23_apps(self):
        assert len(table2_workloads()) == 23
        assert len(TABLE2_ORDER) == 23

    def test_figure3_has_33_apps(self):
        assert len(figure3_workloads()) == 33
        assert len(FIGURE3_ORDER) == 33

    def test_figure3_order_matches_paper_axis(self):
        assert FIGURE3_ORDER[:9] == ("MM", "NN", "BS", "3CV", "BC", "HST",
                                     "BTR", "NW", "BFS")
        assert FIGURE3_ORDER[-1] == "KMN"

    def test_table2_order_matches_paper_rows(self):
        assert TABLE2_ORDER[0] == "KMN"
        assert TABLE2_ORDER[-1] == "BS"

    def test_total_workload_count(self):
        assert len(all_workloads()) == 40
        assert len(REGISTRY) == 40

    def test_no_duplicate_abbrs(self):
        abbrs = [wl.abbr for wl in all_workloads()]
        assert len(abbrs) == len(set(abbrs))

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            workload("XYZ")


class TestGroups:
    def test_group_memberships(self):
        assert len(EVALUATION_GROUPS["algorithm"]) == 8
        assert len(EVALUATION_GROUPS["cache-line"]) == 7
        assert len(EVALUATION_GROUPS["no-exploitable"]) == 8

    def test_groups_cover_table2(self):
        members = [a for g in EVALUATION_GROUPS.values() for a in g]
        assert sorted(members) == sorted(TABLE2_ORDER)

    def test_group_lookup_unknown(self):
        with pytest.raises(KeyError):
            by_category("mystery")

    def test_group_categories_consistent(self):
        for wl in by_category("algorithm"):
            assert wl.category is LocalityCategory.ALGORITHM
        for wl in by_category("cache-line"):
            assert wl.category is LocalityCategory.CACHE_LINE
        for wl in by_category("no-exploitable"):
            assert not wl.category.exploitable


class TestTable2Metadata:
    def test_every_table2_app_has_metadata(self):
        for wl in table2_workloads():
            assert wl.table2 is not None, wl.abbr

    def test_extras_have_no_table2_metadata(self):
        for wl in all_workloads():
            if wl.abbr not in TABLE2_ORDER:
                assert wl.table2 is None, wl.abbr

    def test_paper_values_spot_checks(self):
        kmn = workload("KMN").table2
        assert kmn.warps_per_cta == 8
        assert kmn.opt_agents == (1, 1, 1, 1)
        assert kmn.partition == "X-P"
        mm = workload("MM").table2
        assert mm.warps_per_cta == 32
        assert mm.smem_bytes == 8192
        assert mm.registers == (22, 29, 32, 27)
        assert mm.partition == "Y-P"
        nw = workload("NW").table2
        assert nw.smem_bytes == 2180

    def test_partition_values_valid(self):
        for wl in table2_workloads():
            assert wl.table2.partition in ("X-P", "Y-P"), wl.abbr

    def test_opt_agents_within_ctas(self):
        for wl in table2_workloads():
            for opt, ctas in zip(wl.table2.opt_agents,
                                 wl.table2.ctas_per_sm):
                assert 1 <= opt <= max(ctas, opt), wl.abbr

    def test_per_arch_accessors(self):
        from repro.gpu.config import Architecture
        t2 = workload("NN").table2
        assert t2.registers_for(Architecture.FERMI) == 21
        assert t2.ctas_for(Architecture.PASCAL) == 32
        assert t2.opt_agents_for(Architecture.KEPLER) == 16
