"""Integration tests: the paper's headline *shape* claims, end to end.

These run reduced evaluation matrices and assert the qualitative
structure of the results — who wins, where, and in which direction —
which is the reproduction's contract (absolute numbers are
simulator-dependent and tracked in EXPERIMENTS.md instead).
"""

import pytest

from repro.experiments.evaluation import run_evaluation
from repro.experiments.schemes import run_all_schemes
from repro.gpu.config import GTX570, GTX980, GTX1080, TESLA_K40
from repro.workloads.registry import by_category, workload


@pytest.fixture(scope="module")
def fermi_sweep():
    return run_evaluation(platforms=(GTX570,), scale=0.4,
                          use_paper_agents=True)


@pytest.fixture(scope="module")
def maxwell_sweep():
    return run_evaluation(platforms=(GTX980,), scale=0.4,
                          use_paper_agents=True)


class TestCacheLineArchitectureSplit:
    """Section 5.2-(2): cache-line clustering benefits Fermi/Kepler
    only, because Maxwell/Pascal's 32B lines carry no cross-CTA spill."""

    def test_fermi_cache_line_wins(self, fermi_sweep):
        gm = fermi_sweep.group_geomean_speedup(GTX570, "cache-line",
                                               "CLU+TOT")
        assert gm > 1.2

    def test_maxwell_cache_line_flat(self, maxwell_sweep):
        gm = maxwell_sweep.group_geomean_speedup(GTX980, "cache-line",
                                                 "CLU+TOT")
        assert 0.9 <= gm <= 1.1

    def test_fermi_l2_reduction_strong(self, fermi_sweep):
        gm = fermi_sweep.group_geomean_l2(GTX570, "cache-line", "CLU+TOT")
        assert gm < 0.65

    def test_maxwell_l2_unchanged(self, maxwell_sweep):
        gm = maxwell_sweep.group_geomean_l2(GTX980, "cache-line", "CLU+TOT")
        assert gm > 0.9


class TestAlgorithmGroup:
    def test_algorithm_group_gains_on_fermi(self, fermi_sweep):
        gm = fermi_sweep.group_geomean_speedup(GTX570, "algorithm",
                                               "CLU+TOT")
        assert gm > 1.05

    def test_algorithm_l2_reduced_everywhere(self, fermi_sweep,
                                             maxwell_sweep):
        assert fermi_sweep.group_geomean_l2(GTX570, "algorithm",
                                            "CLU+TOT") < 0.9
        assert maxwell_sweep.group_geomean_l2(GTX980, "algorithm",
                                              "CLU+TOT") < 0.95

    def test_best_algorithm_apps_beat_1_3x(self, fermi_sweep):
        best = max(fermi_sweep.best_clustered_speedup(GTX570, wl.abbr)
                   for wl in by_category("algorithm"))
        assert best > 1.3


class TestNoExploitableGroup:
    """Streaming/data/write apps neither gain nor regress much."""

    def test_flat_on_fermi(self, fermi_sweep):
        for wl in by_category("no-exploitable"):
            speedup = fermi_sweep.result(GTX570, wl.abbr).speedup("CLU")
            assert 0.85 <= speedup <= 1.15, wl.abbr

    def test_l2_traffic_unchanged(self, fermi_sweep):
        gm = fermi_sweep.group_geomean_l2(GTX570, "no-exploitable", "CLU")
        assert 0.9 <= gm <= 1.1


class TestThrottlingClaims:
    """Section 5.2-(3)/(4): throttling helps contention-bound apps and
    is unnecessary for most algorithm-related ones."""

    def test_atx_gains_and_voted_throttle_never_loses(self):
        # the dynamic vote picks the degree by measurement, so CLU+TOT
        # can only match-or-beat CLU up to noise; ATX gains strongly on
        # Kepler either way
        result = run_all_schemes(workload("ATX"), TESLA_K40, scale=0.6)
        assert result.speedup("CLU+TOT") > 1.25
        assert result.speedup("CLU+TOT") >= 0.95 * result.speedup("CLU")

    def test_nn_does_not_need_throttling(self):
        result = run_all_schemes(workload("NN"), TESLA_K40, scale=0.6,
                                 use_paper_agents=True)
        assert result.speedup("CLU") >= 0.95 * result.speedup("CLU+TOT")


class TestWriteRelatedClaim:
    """NW has locality, but the write-evict L1 destroys it — clustering
    cannot help (Section 3.2-D)."""

    def test_nw_flat_everywhere(self):
        for gpu in (GTX570, GTX980):
            result = run_all_schemes(workload("NW"), gpu, scale=0.6,
                                     use_paper_agents=True)
            assert 0.9 <= result.speedup("CLU") <= 1.1, gpu.name


class TestMmIsHard:
    """Section 5.2-(6): MM's reuse distance defeats the small L1, so its
    gains are modest despite large inherent reuse."""

    def test_mm_modest_on_all_architectures(self):
        for gpu in (GTX570, GTX980, GTX1080):
            result = run_all_schemes(workload("MM"), gpu, scale=0.8,
                                     use_paper_agents=True)
            assert 0.85 <= result.speedup("CLU") <= 1.25, gpu.name
