"""Golden regression fixtures for the Figure-12/13 scheme matrix.

Each golden is the SHA-256 fingerprint of the *canonicalized* metrics
(:func:`repro.gpu.metrics.metrics_fingerprint`, floats via ``repr``)
for one fixed-seed cell of the evaluation matrix: workload x platform
x scheme at a reduced scale.  Any change to the simulator, the cache
models, the planners or the workload models that moves even one
counter or one float bit flips a fingerprint and fails here — the
tightest regression net the repo has.

When a behaviour change is *intentional*, regenerate with::

    PYTHONPATH=src python -m pytest tests/integration/test_goldens.py \
        --update-goldens

and commit the fixture diff alongside the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.gpu.metrics import metrics_fingerprint

GOLDEN_PATH = Path(__file__).parent / "goldens" / "scheme_fingerprints.json"

#: Fixed-seed sub-matrix of the Figure-12 scheme progression (and the
#: Figure-13 cross-platform slice): small enough to run on every CI
#: push, wide enough to cover both cache geometries, every plan mode
#: and the bypass path.
WORKLOADS = ("NN", "ATX", "BS")
GPUS = ("Tesla K40", "GTX980")
SCHEMES = ("BSL", "RD", "CLU", "CLU+TOT+BPS")
SCALE = 0.2
SEED = 0
WARMUPS = 1


def compute_fingerprints() -> "dict[str, str]":
    out = {}
    for wl in WORKLOADS:
        for gpu in GPUS:
            for scheme in SCHEMES:
                metrics = api.simulate(wl, gpu, scheme=scheme, scale=SCALE,
                                       seed=SEED, warmups=WARMUPS)
                out[f"{wl}/{gpu}/{scheme}"] = metrics_fingerprint(metrics)
    return out


def test_scheme_matrix_matches_goldens(request):
    got = compute_fingerprints()
    if request.config.getoption("--update-goldens"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(got, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"goldens rewritten at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), \
        "no golden fixture checked in; run with --update-goldens"
    golden = json.loads(GOLDEN_PATH.read_text())
    drifted = sorted(cell for cell in golden
                     if got.get(cell) != golden[cell])
    assert got == golden, (
        f"{len(drifted)} golden cell(s) drifted: {drifted[:6]}... "
        f"If the behaviour change is intentional, regenerate with "
        f"--update-goldens and commit the fixture diff.")


def test_goldens_are_deterministic():
    """The same cell computed twice in-process fingerprints identically
    (guards accidental global state in kernels/planners/schedulers)."""
    a = api.simulate("NN", "Tesla K40", scheme="CLU", scale=SCALE,
                     seed=SEED, warmups=WARMUPS)
    b = api.simulate("NN", "Tesla K40", scheme="CLU", scale=SCALE,
                     seed=SEED, warmups=WARMUPS)
    assert metrics_fingerprint(a) == metrics_fingerprint(b)
