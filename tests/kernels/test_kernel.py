"""Kernel abstraction tests: grids, arrays, specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.kernel import (
    AddressSpace, ArrayRef, ArraySpec, Dim3, KernelSpec, LocalityCategory)


class TestDim3:
    def test_count(self):
        assert Dim3(4, 3, 2).count == 24
        assert Dim3(7).count == 7

    def test_iteration(self):
        assert tuple(Dim3(1, 2, 3)) == (1, 2, 3)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Dim3(0)
        with pytest.raises(ValueError):
            Dim3(4, -1)


class TestArraySpec:
    def test_addressing(self):
        spec = ArraySpec("A", base=1000, rows=4, cols=8, element_size=4)
        assert spec.addr(0, 0) == 1000
        assert spec.addr(1, 0) == 1000 + 32
        assert spec.addr(2, 3) == 1000 + 64 + 12
        assert spec.size == 128
        assert spec.end == 1128


class TestAddressSpace:
    def test_arrays_never_overlap(self):
        space = AddressSpace()
        a = space.alloc("A", 10, 33)
        b = space.alloc("B", 5, 7)
        assert b.base >= a.end

    def test_alignment(self):
        space = AddressSpace(alignment=256)
        space.alloc("A", 3, 3)
        b = space.alloc("B", 3, 3)
        assert b.base % 256 == 0

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("A", 1, 1)
        with pytest.raises(ValueError, match="already allocated"):
            space.alloc("A", 1, 1)

    def test_lookup(self):
        space = AddressSpace()
        a = space.alloc("A", 2, 2)
        assert space["A"] is a

    @settings(max_examples=40, deadline=None)
    @given(shapes=st.lists(st.tuples(st.integers(1, 50), st.integers(1, 50)),
                           min_size=2, max_size=10))
    def test_property_all_allocations_disjoint(self, shapes):
        space = AddressSpace()
        specs = [space.alloc(f"a{i}", r, c) for i, (r, c) in enumerate(shapes)]
        for first, second in zip(specs, specs[1:]):
            assert first.end <= second.base


class TestKernelSpec:
    def make(self, grid=Dim3(4, 3)):
        return KernelSpec(name="k", grid=grid, block=Dim3(96),
                          trace=lambda bx, by, bz: [])

    def test_warps_per_cta_rounds_up(self):
        assert self.make().warps_per_cta == 3
        spec = KernelSpec(name="k", grid=Dim3(1), block=Dim3(33),
                          trace=lambda bx, by, bz: [])
        assert spec.warps_per_cta == 2

    def test_cta_coords_roundtrip(self):
        spec = self.make(Dim3(5, 4, 3))
        seen = set()
        for v in range(spec.n_ctas):
            bx, by, bz = spec.cta_coords(v)
            assert 0 <= bx < 5 and 0 <= by < 4 and 0 <= bz < 3
            assert v == (bz * 4 + by) * 5 + bx
            seen.add((bx, by, bz))
        assert len(seen) == 60

    def test_cta_coords_out_of_range(self):
        spec = self.make()
        with pytest.raises(IndexError):
            spec.cta_coords(12)
        with pytest.raises(IndexError):
            spec.cta_coords(-1)

    def test_reads_and_writes_same_array(self):
        spec = KernelSpec(
            name="k", grid=Dim3(1), block=Dim3(32),
            trace=lambda bx, by, bz: [],
            array_refs=(ArrayRef("A", (("bx",),)),
                        ArrayRef("A", (("bx",),), is_write=True)))
        assert spec.reads_and_writes_same_array()

    def test_disjoint_read_write_arrays(self):
        spec = KernelSpec(
            name="k", grid=Dim3(1), block=Dim3(32),
            trace=lambda bx, by, bz: [],
            array_refs=(ArrayRef("A", (("bx",),)),
                        ArrayRef("B", (("bx",),), is_write=True)))
        assert not spec.reads_and_writes_same_array()


class TestLocalityCategory:
    def test_exploitable_categories(self):
        # Section 4.1's definition of exploitable inter-CTA locality
        assert LocalityCategory.ALGORITHM.exploitable
        assert LocalityCategory.CACHE_LINE.exploitable
        assert not LocalityCategory.DATA.exploitable
        assert not LocalityCategory.WRITE.exploitable
        assert not LocalityCategory.STREAMING.exploitable

    def test_five_categories(self):
        assert len(LocalityCategory) == 5


class TestArrayRef:
    def test_last_dim(self):
        ref = ArrayRef("A", (("by",), ("bx", "tx")))
        assert ref.last_dim == ("bx", "tx")

    def test_default_weight(self):
        assert ArrayRef("A", (("bx",),)).weight == 1.0
