"""Listing-3 microbenchmark tests: the Figure-2 claims."""

import pytest

from repro.gpu.config import EVALUATION_PLATFORMS
from repro.gpu.scheduler import RoundRobinScheduler
from repro.kernels.microbench import (
    cta_count, run_microbench, summarize_turnarounds, turnarounds_for)


class TestSetup:
    def test_listing3_cta_counts(self):
        # Listing 3 lines 18-21: 480 / 960 / 1024 / 1280
        assert [cta_count(g) for g in EVALUATION_PLATFORMS] == \
            [480, 960, 1024, 1280]

    def test_turnarounds(self):
        assert [turnarounds_for(g) for g in EVALUATION_PLATFORMS] == \
            [4, 4, 2, 2]


class TestTemporalLocality:
    """Figure 2-(A): only the first turnaround pays memory latency."""

    def test_first_turnaround_slow(self, any_gpu):
        result = run_microbench(any_gpu, staggered=False)
        means = summarize_turnarounds(result)
        assert means[0] > 2 * any_gpu.l1_latency

    def test_later_turnarounds_hit_l1(self, any_gpu):
        result = run_microbench(any_gpu, staggered=False)
        means = summarize_turnarounds(result)
        for turnaround, mean in means.items():
            if turnaround > 0:
                assert mean == pytest.approx(any_gpu.l1_latency)

    def test_first_turnaround_mostly_hit_reserved(self, kepler):
        # all but the first CTA hit, but the data is on the fly
        result = run_microbench(kepler, staggered=False)
        first = [r for r in result.figure2_series() if r.turnaround == 0]
        slow = [r for r in first if r.access_cycles > 2 * kepler.l1_latency]
        assert len(slow) == len(first)


class TestSpatialLocality:
    """Figure 2-(B): staggering exposes same-turnaround reuse."""

    def test_only_cold_fetches_are_slow(self, any_gpu):
        result = run_microbench(any_gpu, staggered=True)
        first = [r for r in result.figure2_series() if r.turnaround == 0]
        slow = [r for r in first
                if r.access_cycles > 1.5 * any_gpu.l1_latency]
        assert 1 <= len(slow) <= any_gpu.l1_sectors

    def test_staggered_mean_near_l1(self, any_gpu):
        result = run_microbench(any_gpu, staggered=True)
        means = summarize_turnarounds(result)
        assert means[0] < 2 * any_gpu.l1_latency


class TestBookkeeping:
    def test_every_cta_recorded_once(self, kepler):
        result = run_microbench(kepler)
        ids = sorted(r.original_id for r in result.records)
        assert ids == list(range(cta_count(kepler)))

    def test_sm_of_cta(self, kepler):
        result = run_microbench(kepler, scheduler=RoundRobinScheduler())
        assert result.sm_of_cta(0) == 0
        assert result.sm_of_cta(1) == 1
        with pytest.raises(KeyError):
            result.sm_of_cta(10 ** 9)

    def test_figure2_series_is_one_sm(self, kepler):
        result = run_microbench(kepler)
        series = result.figure2_series()
        assert len({r.sm_id for r in series}) == 1
        assert any(r.original_id == 0 for r in series)
