"""Warp access and coalescer tests, with hypothesis coverage proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.access import (
    WarpAccess, coalesce, coalescing_degree, read, write)


class TestConstructors:
    def test_read_defaults(self):
        access = read(0x100)
        assert access == WarpAccess(0x100, 4, 32, 4, False, False)

    def test_write_flag(self):
        assert write(0x100).is_write
        assert not read(0x100).is_write

    def test_stream_tag(self):
        assert read(0, stream=True).is_stream
        assert not read(0).is_stream


class TestCoalesce:
    def test_dense_warp_load_128b(self):
        # a perfectly coalesced float warp load = one 128B segment
        assert coalesce(read(0, 4, 32, 4), 128) == [0]

    def test_dense_warp_load_32b_sectors(self):
        assert coalesce(read(0, 4, 32, 4), 32) == [0, 32, 64, 96]

    def test_misaligned_load_spans_two_segments(self):
        assert coalesce(read(64, 4, 32, 4), 128) == [0, 128]

    def test_single_lane(self):
        assert coalesce(read(100, 0, 1, 4), 128) == [0]

    def test_single_lane_straddling(self):
        assert coalesce(read(126, 0, 1, 4), 128) == [0, 128]

    def test_broadcast_stride_zero(self):
        # all lanes read the same address: one segment
        assert coalesce(read(256, 0, 32, 4), 128) == [256 - 256 % 128]

    def test_scattered_large_stride(self):
        segments = coalesce(read(0, 256, 4, 4), 128)
        assert segments == [0, 256, 512, 768]

    def test_scattered_deduplicates(self):
        # stride 160 over 128B segments revisits some segments
        segments = coalesce(read(0, 160, 4, 4), 128)
        assert len(segments) == len(set(segments))

    def test_empty_lanes(self):
        assert coalesce(WarpAccess(0, 4, 0, 4), 128) == []

    def test_mid_stride(self):
        # stride 16B, 32 lanes: spans 512B = 4 x 128B segments
        assert coalesce(read(0, 16, 32, 4), 128) == [0, 128, 256, 384]


@settings(max_examples=150, deadline=None)
@given(base=st.integers(0, 1 << 24), stride=st.integers(0, 512),
       lanes=st.integers(1, 32), size=st.sampled_from([1, 2, 4, 8, 16]),
       segment=st.sampled_from([32, 128]))
def test_property_every_lane_byte_is_covered(base, stride, lanes, size,
                                             segment):
    """Each lane's element falls inside some returned segment."""
    access = WarpAccess(base, stride, lanes, size)
    segments = coalesce(access, segment)
    covered = set()
    for seg in segments:
        assert seg % segment == 0, "segments must be aligned"
        covered.update(range(seg, seg + segment))
    for lane in range(lanes):
        addr = base + lane * stride
        assert addr in covered
        assert addr + size - 1 in covered


@settings(max_examples=100, deadline=None)
@given(base=st.integers(0, 1 << 20), stride=st.integers(0, 64),
       lanes=st.integers(1, 32))
def test_property_dense_segments_are_contiguous(base, stride, lanes):
    segments = coalesce(WarpAccess(base, stride, lanes, 4), 128)
    for a, b in zip(segments, segments[1:]):
        assert b - a == 128


class TestCoalescingDegree:
    def test_perfect_coalescing(self):
        accesses = [read(i * 128, 4, 32, 4) for i in range(8)]
        assert coalescing_degree(accesses, 128) == pytest.approx(32.0)

    def test_fully_scattered(self):
        accesses = [read(0, 4096, 32, 4)]
        assert coalescing_degree(accesses, 128) == pytest.approx(1.0)

    def test_empty(self):
        assert coalescing_degree([], 128) == 0.0
