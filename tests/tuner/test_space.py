"""Configuration-space unit tests: normalization, enumeration, moves."""

import pytest

from repro.tuner import ConfigPoint, SearchSpace, point_from_decision
from repro.tuner.space import DIRECTIONS, KINDS

from tests.tuner.conftest import GPU, SCALE, WORKLOAD


class TestNormalize:
    def test_baseline_clears_every_sub_axis(self, space):
        noisy = ConfigPoint(kind="BSL", direction="X-P", active_agents=4,
                            bypass=True, tile=(2, 2))
        assert space.normalize(noisy) == ConfigPoint(kind="BSL")

    def test_rd_keeps_only_direction(self, space):
        noisy = ConfigPoint(kind="RD", direction="X-P", active_agents=4,
                            bypass=True, tile=(4, 4))
        assert space.normalize(noisy) == ConfigPoint(kind="RD",
                                                     direction="X-P")

    def test_pfh_drops_bypass_and_tile(self, space):
        noisy = ConfigPoint(kind="PFH", direction="Y-P", active_agents=2,
                            bypass=True, tile=(2, 2))
        point = space.normalize(noisy)
        assert point.kind == "PFH" and not point.bypass and point.tile is None

    def test_tile_clu_drops_direction(self, space):
        point = space.normalize(ConfigPoint(kind="CLU", direction="X-P",
                                            tile=(4, 4)))
        assert point.direction is None and point.tile == (4, 4)

    def test_missing_direction_defaults_to_paper_order(self, space):
        assert space.normalize(ConfigPoint(kind="RD")).direction == \
            DIRECTIONS[0]

    def test_agents_snap_to_nearest_degree(self, space):
        degrees = space.agent_degrees()
        point = space.normalize(ConfigPoint(kind="PFH", direction="Y-P",
                                            active_agents=10 ** 6))
        # Far over the top snaps to MAX_AGENTS (kept explicit for PFH).
        assert point.active_agents == max(degrees)

    def test_unthrottled_clu_spelled_as_none(self, space):
        point = space.normalize(ConfigPoint(kind="CLU", direction="Y-P",
                                            active_agents=space.max_agents))
        assert point.active_agents is None

    def test_unknown_kind_rejected(self, space):
        with pytest.raises(KeyError):
            space.normalize(ConfigPoint(kind="XYZ"))

    def test_normalize_is_idempotent(self, space):
        for point in space.points():
            assert space.normalize(point) == point


class TestEnumeration:
    def test_points_are_unique_and_canonical(self, space):
        points = space.points()
        assert len(points) == len(set(points))
        assert points[0] == ConfigPoint(kind="BSL")
        assert all(p.kind in KINDS for p in points)

    def test_every_kind_represented(self, space):
        kinds = {p.kind for p in space.points()}
        assert kinds == set(KINDS)

    def test_enumeration_is_deterministic(self):
        a = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        b = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        assert a.points() == b.points()

    def test_labels_are_unique(self, space):
        labels = [p.label() for p in space.points()]
        assert len(labels) == len(set(labels))


class TestAxisVariants:
    def test_variants_include_current_point(self, space):
        point = space.normalize(ConfigPoint(kind="CLU", direction="Y-P"))
        for axis in SearchSpace.AXES:
            assert point in space.axis_variants(point, axis)

    def test_variants_are_normalized(self, space):
        point = space.normalize(ConfigPoint(kind="PFH", direction="Y-P"))
        for axis in SearchSpace.AXES:
            for variant in space.axis_variants(point, axis):
                assert space.normalize(variant) == variant

    def test_locked_axes_return_singleton(self, space):
        bsl = ConfigPoint(kind="BSL")
        assert space.axis_variants(bsl, "direction") == [bsl]
        assert space.axis_variants(bsl, "bypass") == [bsl]

    def test_unknown_axis_rejected(self, space):
        with pytest.raises(KeyError):
            space.axis_variants(ConfigPoint(kind="BSL"), "warp_size")


class TestPointMappings:
    def test_every_point_builds_a_job(self, space):
        for point in space.points():
            job = space.job(point, scale=SCALE)
            assert job.kind == "measure"

    def test_job_hash_distinguishes_points(self, space):
        keys = {space.job(p, scale=SCALE).key for p in space.points()}
        assert len(keys) == len(space.points())

    def test_every_point_materializes_a_plan(self, space):
        for point in space.points():
            plan = space.plan(point, scale=SCALE)
            assert plan is not None

    def test_warm_start_round_trips_the_rule_pick(self, space):
        from repro.engine import default_runner, framework_job
        runner = default_runner(jobs=1, cached=True, memo=True)
        summary = runner.run([framework_job(WORKLOAD, GPU, scale=SCALE)])[0]
        point = point_from_decision(summary, space)
        assert space.normalize(point) == point
        if summary.scheme == "BSL":
            assert point.kind == "BSL"
        else:
            # CLU+TOT+BPS -> CLU, PFH+TOT -> PFH, RD -> RD.
            assert point.kind == summary.scheme.split("+")[0]
