"""End-to-end tuner tests: strategies, determinism, the guarantees.

These run real (small-scale) simulations through the sweep engine;
the conftest pins a per-test cache dir so results never leak between
tests or into the checkout.
"""

import pytest

from repro.tuner import (DEFAULT_BUDGET, OBJECTIVES, STRATEGIES, TuneResult,
                         objective, strategy, tune)

from tests.tuner.conftest import BUDGET, GPU, SCALE, WORKLOAD


def small_tune(**overrides):
    kwargs = dict(objective="cycles", strategy="hillclimb", budget=BUDGET,
                  scale=SCALE, seed=0)
    kwargs.update(overrides)
    return tune(WORKLOAD, GPU, **kwargs)


class TestRegistries:
    def test_strategy_registry(self):
        assert set(STRATEGIES) == {"grid", "hillclimb", "halving"}
        for name in STRATEGIES:
            assert strategy(name).name == name

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="hillclimb"):
            strategy("simulated_annealing")

    def test_objective_registry(self):
        assert set(OBJECTIVES) == {"cycles", "l2_transactions",
                                   "dram_transactions"}
        for name in OBJECTIVES:
            assert objective(name).name == name

    def test_unknown_objective_rejected(self):
        with pytest.raises(KeyError, match="cycles"):
            objective("watts")

    def test_default_budget_is_sane(self):
        assert DEFAULT_BUDGET >= 8


class TestTuneContract:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            small_tune(budget=0)

    def test_result_shape(self):
        result = small_tune()
        assert isinstance(result, TuneResult)
        assert result.workload == WORKLOAD and result.gpu == GPU
        assert result.leaderboard[0] == result.best
        assert 1 <= result.evaluations <= BUDGET
        assert result.best_plan is not None
        assert result.record().best_plan is None
        assert dict(result.decision)["scheme"]

    def test_leaderboard_is_rank_ordered(self):
        result = small_tune()
        scores = [c.score for c in result.leaderboard]
        assert scores == sorted(scores)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_regression_free_guarantee(self, name):
        """Every strategy's winner beats or ties the rule-based pick."""
        result = small_tune(strategy=name)
        assert result.best.score <= result.baseline.score
        assert result.speedup_vs_rule >= 1.0
        assert result.baseline.source == "framework"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_bit_deterministic_leaderboard(self, name):
        """Fixed (seed, budget) -> identical leaderboard, run to run."""
        first = small_tune(strategy=name)
        second = small_tune(strategy=name)
        assert first.record() == second.record()

    def test_budget_bounds_evaluations(self):
        result = small_tune(strategy="grid", budget=5)
        assert result.evaluations == 5
        assert result.truncated > 0  # grid wants the whole space

    def test_objective_changes_ranking_basis(self):
        result = small_tune(objective="dram_transactions")
        assert result.objective == "dram_transactions"
        assert result.best.score == result.best.dram_transactions


class TestWarmCache:
    def test_repeat_tune_runs_zero_new_simulations(self, tmp_path,
                                                   monkeypatch):
        """Acceptance: a warm .repro_cache serves the whole repeat run."""
        from repro.engine import default_runner
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        small_tune(runner=default_runner(jobs=1, cached=True, memo=True))

        cold = default_runner(jobs=1, cached=True, memo=True)
        repeat = small_tune(runner=cold)
        stats = cold.cache.stats()
        assert stats["misses"] == 0 and stats["writes"] == 0
        assert stats["hits"] >= repeat.evaluations
        assert repeat.best.score <= repeat.baseline.score


class TestProfileIntegration:
    def test_tune_section_in_profile_summary(self):
        from repro.obs import ProfileSession
        from repro.obs.schema import validate_profile
        session = ProfileSession(label="tune-test")
        small_tune(profile=session)
        document = session.summary()
        assert document["tune"]["runs"] == 1
        entry = document["tune"]["results"][0]
        assert entry["workload"] == WORKLOAD
        assert entry["speedup_vs_rule"] >= 1.0
        validate_profile(document)

    def test_progress_notes_on_stderr(self, capsys):
        small_tune(progress=True)
        err = capsys.readouterr().err
        assert "[tune:hillclimb]" in err
        assert "warm start" in err
