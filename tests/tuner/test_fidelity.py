"""The fidelity ladder: rung resolution, the analytic rung's zero
cost, and the redesigned halving strategy's budget frugality."""

import warnings

import pytest

from repro.engine import default_runner
from repro.fidelity import (ANALYTIC, FIDELITIES, FULL, REDUCED, Fidelity,
                            resolve_fidelity)
from repro.tuner import Evaluator, SearchSpace, tune
from repro.tuner.objective import objective as lookup_objective
from tests.tuner.conftest import GPU, SCALE, WORKLOAD


def evaluator_for(space, budget):
    return Evaluator(space=space, runner=default_runner(jobs=1, cached=False,
                                                        memo=True),
                     objective=lookup_objective("cycles"), scale=SCALE,
                     budget=budget)


class TestLadder:
    def test_rungs_are_ordered_and_named(self):
        assert [f.rung for f in FIDELITIES.values()] == [0, 1, 2]
        assert list(FIDELITIES) == ["analytic", "reduced", "full"]
        assert not ANALYTIC.simulated
        assert REDUCED.simulated and FULL.simulated
        assert ANALYTIC.budget_cost == 0
        assert REDUCED.budget_cost == FULL.budget_cost == 1

    def test_resolution_accepts_names_and_instances(self):
        assert resolve_fidelity("analytic") is ANALYTIC
        assert resolve_fidelity("FULL") is FULL
        assert resolve_fidelity(REDUCED) is REDUCED
        assert resolve_fidelity(None) is FULL
        assert resolve_fidelity(None, default=ANALYTIC) is ANALYTIC

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_fidelity("quantum")

    def test_legacy_float_multipliers_warn_and_map(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_fidelity(1.0) is FULL
        with pytest.warns(DeprecationWarning):
            assert resolve_fidelity(0.5) is REDUCED
        with pytest.raises(ValueError), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resolve_fidelity(0.0)
        with pytest.raises(TypeError):
            resolve_fidelity(True)

    def test_rungs_are_frozen(self):
        with pytest.raises(Exception):
            FULL.rung = 7


class TestEvaluatorRungs:
    def test_analytic_rung_is_free(self, space):
        evaluator = evaluator_for(space, 4)
        evaluator.evaluate(list(space.points())[:8], fidelity=ANALYTIC)
        assert evaluator.spent == 0
        assert evaluator.remaining == 4
        assert len(list(evaluator.candidates(fidelity=ANALYTIC))) == 8
        # ...and those free scores never leak into the full-rung board.
        assert list(evaluator.candidates(fidelity=FULL)) == []

    def test_simulated_rungs_charge_budget(self, space):
        evaluator = evaluator_for(space, 4)
        points = list(space.points())[:2]
        evaluator.evaluate(points, fidelity=REDUCED)
        assert evaluator.spent == 2
        evaluator.evaluate(points, fidelity=FULL)
        assert evaluator.spent == 4

    def test_same_point_scored_per_rung(self, space):
        evaluator = evaluator_for(space, 4)
        point = next(iter(space.points()))
        evaluator.evaluate([point], fidelity=ANALYTIC)
        evaluator.evaluate([point], fidelity=FULL)
        analytic = evaluator.score_of(point, fidelity=ANALYTIC)
        full = evaluator.score_of(point, fidelity=FULL)
        assert analytic is not None and full is not None
        assert analytic != full  # different models, different numbers


class TestHalvingFrugality:
    BUDGET = 16

    def run(self, **kwargs):
        return tune(WORKLOAD, GPU, strategy="halving", budget=self.BUDGET,
                    scale=SCALE, **kwargs)

    def test_guarantee_and_budget_quarter(self):
        result = self.run()
        # The redesign's acceptance bar: rung-0 triage must cut the
        # halving ladder to <= 25% of the budget the simulated rungs
        # used to charge, without giving up the never-worse guarantee.
        assert result.evaluations <= self.BUDGET // 4
        assert result.best.score <= result.baseline.score
        assert result.fidelity == "full"

    def test_deterministic(self):
        a, b = self.run(), self.run()
        assert a.best.scheme == b.best.scheme
        assert a.best.score == b.best.score
        assert a.evaluations == b.evaluations

    def test_analytic_only_tune_is_simulation_free(self):
        result = self.run(fidelity="analytic")
        assert result.fidelity == "analytic"
        assert result.evaluations == 0
        assert len(result.leaderboard) > 0
        assert all(c.fidelity == "analytic" for c in result.leaderboard)

    def test_full_leaderboard_reports_rung(self):
        result = self.run()
        assert all(c.fidelity == "full" for c in result.leaderboard)
