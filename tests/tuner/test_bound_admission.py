"""The oracle-bound admission filter: ``bound_admit`` semantics and
its integration into the search strategies.

The filter's contract is deliberately conservative: it may only ever
*remove* candidates whose rung-0 estimate already exceeds a generous
multiple of the schedule-free cycles floor, it must never empty the
pool, and warm/incumbent points are exempt — so a strategy with the
filter can never return a worse answer than the same strategy without
it.
"""

from collections import namedtuple

import pytest

from repro.tuner.space import SearchSpace
from repro.tuner.strategies import (BOUND_SLACK, bound_admit,
                                    oracle_floor)
from tests.tuner.conftest import GPU, SCALE, WORKLOAD

FakeCandidate = namedtuple("FakeCandidate", "point cycles")


def _ranked(*cycles):
    return [FakeCandidate(point=f"p{i}", cycles=c)
            for i, c in enumerate(cycles)]


class TestBoundAdmit:
    def test_keeps_everything_under_the_ceiling(self):
        ranked = _ranked(100, 200, 700)
        admitted, pruned = bound_admit(ranked, 100.0, slack=8.0)
        assert admitted == ranked
        assert pruned == []

    def test_prunes_hopeless_tails(self):
        ranked = _ranked(100, 900, 5000)
        admitted, pruned = bound_admit(ranked, 100.0, slack=8.0)
        assert [c.cycles for c in admitted] == [100]
        assert [c.cycles for c in pruned] == [900, 5000]

    def test_keep_points_are_exempt(self):
        ranked = _ranked(100, 900)
        admitted, pruned = bound_admit(ranked, 100.0, slack=8.0,
                                       keep_points=("p1",))
        assert admitted == ranked
        assert pruned == []

    def test_never_empties_the_pool(self):
        """When every candidate exceeds the ceiling, the filter stands
        down entirely rather than guessing which ones to keep."""
        ranked = _ranked(900, 1000, 1100)
        admitted, pruned = bound_admit(ranked, 1.0, slack=8.0)
        assert admitted == ranked
        assert pruned == []

    def test_degenerate_floor_passes_through(self):
        ranked = _ranked(100, 900)
        for floor in (None, 0.0, -5.0):
            admitted, pruned = bound_admit(ranked, floor)
            assert admitted == ranked and pruned == []
        assert bound_admit([], 100.0) == ([], [])

    def test_default_slack_is_generous(self):
        # Real winners land 2-4x above the perfect-hiding floor; the
        # default must not threaten them.
        assert BOUND_SLACK >= 4.0


class TestOracleFloor:
    def test_floor_is_positive_and_memoized(self):
        space = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        first = oracle_floor(space, SCALE)
        assert first > 0
        assert oracle_floor(space, SCALE) == first

    def test_floor_varies_with_scale(self):
        space = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        assert oracle_floor(space, SCALE) != oracle_floor(space, 0.5)


class TestStrategyIntegration:
    @pytest.mark.parametrize("strategy_name",
                             ["grid", "hillclimb", "halving"])
    def test_forced_pruning_still_returns_an_answer(
            self, strategy_name, monkeypatch):
        """Even a pathological slack (which prunes every simulated
        candidate except the exempt warm/incumbent point) leaves the
        search with a valid best — the regression-free guarantee."""
        from repro.tuner import STRATEGIES, tune

        monkeypatch.setattr(STRATEGIES[strategy_name], "bound_slack",
                            1e-6)
        result = tune(WORKLOAD, GPU, strategy=strategy_name, budget=6,
                      scale=SCALE)
        assert result.best is not None
        assert result.best.cycles > 0
        # The warm baseline is exempt, so best can never be worse.
        assert result.best.score <= result.baseline.score
