"""Shared tuner-test fixtures: a pinned cache dir and cheap knobs."""

import pytest

#: The tuner suite runs tiny: one small workload, small budget.
WORKLOAD = "NN"
GPU = "Tesla K40"
SCALE = 0.3
BUDGET = 10


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own .repro_cache; warm-cache tests re-point
    REPRO_CACHE_DIR themselves when they need persistence across
    runner instances."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture()
def space():
    from repro.tuner import SearchSpace
    return SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
