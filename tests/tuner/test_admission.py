"""Analytic admission filters: rung-0 triage inside grid and hillclimb.

The contract under test: with the closed-form model pre-ranking
candidates, the simulating strategies charge *fewer* full-fidelity
evaluations while landing on an equal-or-better best objective than
the untriaged search — on this suite's small NN space, the exact
brute-force optimum.
"""

from repro.engine import default_runner
from repro.tuner import Evaluator, tune
from repro.tuner.objective import objective as lookup_objective
from repro.tuner.space import Candidate, SearchSpace
from repro.tuner.strategies import HillClimbStrategy
from tests.tuner.conftest import GPU, SCALE, WORKLOAD


def _brute_force_best(space):
    """Every point at full fidelity — the reference optimum."""
    points = space.points()
    evaluator = Evaluator(
        space=space, runner=default_runner(jobs=1, cached=True, memo=True),
        objective=lookup_objective("cycles"), scale=SCALE,
        budget=len(points) + 1)
    found = evaluator.evaluate(points)
    assert evaluator.truncated == 0
    return min(found, key=Candidate.rank_key)


class TestGridAdmission:
    def test_fewer_charged_evals_at_the_brute_force_optimum(self):
        space = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        full_sweep = len(space.points())
        budget = full_sweep // 3
        result = tune(WORKLOAD, GPU, strategy="grid", budget=budget,
                      scale=SCALE, seed=0)
        # Far fewer charged evaluations than sweeping the space...
        assert result.evaluations <= budget < full_sweep
        # ...and the analytic ranking still admitted the true winner.
        brute = _brute_force_best(space)
        assert result.best.score == brute.score
        assert result.best.point == brute.point

    def test_admission_never_leaves_budget_idle(self, monkeypatch):
        """With budget >= the space and the oracle floor disabled,
        admission is a no-op: every point still gets simulated (the
        `keep >= remaining` clause).  With the floor live, the only
        points dropped are the ones it pruned."""
        from repro.tuner.strategies import GridStrategy
        space = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        full_sweep = len(space.points())
        monkeypatch.setattr(GridStrategy, "bound_slack", float("inf"))
        result = tune(WORKLOAD, GPU, strategy="grid", budget=full_sweep + 8,
                      scale=SCALE, seed=0)
        assert result.evaluations >= full_sweep - 1

    def test_analytic_run_skips_triage(self):
        """A rung-0 tune has nothing to admit *to*; the sweep is the
        plain enumeration and charges nothing."""
        result = tune(WORKLOAD, GPU, strategy="grid", budget=8,
                      scale=SCALE, seed=0, fidelity="analytic")
        assert result.evaluations == 0


class TestHillClimbAdmission:
    def test_fewer_charged_evals_than_the_unfiltered_climb(self, monkeypatch):
        budget = 40
        admitted = tune(WORKLOAD, GPU, strategy="hillclimb", budget=budget,
                        scale=SCALE, seed=0)
        monkeypatch.setattr(
            HillClimbStrategy, "_admit",
            lambda self, evaluator, space, pool, current: pool)
        unfiltered = tune(WORKLOAD, GPU, strategy="hillclimb", budget=budget,
                          scale=SCALE, seed=0)
        assert admitted.evaluations < unfiltered.evaluations
        assert admitted.best.score <= unfiltered.best.score

    def test_incumbent_always_survives_triage(self):
        """The filter may never drop the current point: the climb's
        strict-improvement rule needs it in every neighborhood."""
        space = SearchSpace.for_workload(WORKLOAD, GPU, scale=SCALE)
        evaluator = Evaluator(
            space=space, runner=default_runner(jobs=1, cached=True,
                                               memo=True),
            objective=lookup_objective("cycles"), scale=SCALE, budget=30)
        strategy = HillClimbStrategy()
        current = space.normalize(space.points()[0])
        pool = space.axis_variants(current, "active_agents")
        admitted = strategy._admit(evaluator, space, pool, current)
        assert current in admitted
        assert len(admitted) <= len(pool)
