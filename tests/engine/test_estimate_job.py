"""The rung-0 ``estimate`` job kind: identity, execution, caching."""

import pytest

from repro.engine import SimJob, estimate_job, execute, measure_job
from repro.engine.executors import batch_key
from repro.gpu.analytic import AnalyticEstimate


class TestJobIdentity:
    def test_key_is_stable_across_constructions(self):
        a = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        b = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        assert a == b
        assert a.key == b.key

    def test_key_differs_from_simulate_job(self):
        est = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        sim = measure_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        assert est.kind == "estimate"
        assert est.key != sim.key

    def test_every_knob_feeds_the_key(self):
        base = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        variants = [
            estimate_job("BP", "Tesla K40", scheme="CLU", scale=0.3),
            estimate_job("NN", "GTX980", scheme="CLU", scale=0.3),
            estimate_job("NN", "Tesla K40", scheme="RD", scale=0.3),
            estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.5),
            estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3,
                         seed=1),
            estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3,
                         warmups=0),
            estimate_job("NN", "Tesla K40", plan="clu", scale=0.3),
        ]
        keys = {base.key, *(v.key for v in variants)}
        assert len(keys) == len(variants) + 1

    def test_scheme_and_plan_are_exclusive(self):
        with pytest.raises(ValueError):
            estimate_job("NN", "Tesla K40", scheme="CLU", plan="clu")

    def test_unknown_plan_kind_rejected(self):
        with pytest.raises(ValueError):
            estimate_job("NN", "Tesla K40", plan="mystery")


class TestExecution:
    def test_executes_to_analytic_estimate(self):
        job = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        result = execute(job)
        assert isinstance(result, AnalyticEstimate)
        assert result.scheme == "CLU"
        assert result.cycles > 0

    def test_execution_is_deterministic(self):
        job = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        assert execute(job) == execute(job)

    def test_baseline_when_no_scheme(self):
        job = estimate_job("NN", "Tesla K40", scale=0.3)
        assert execute(job).scheme == "BSL"

    def test_plan_form_matches_scheme_form_for_clu(self):
        # The tuner builds estimate jobs in plan form; the facade in
        # scheme form.  For plain CLU both resolve to the same plan.
        by_scheme = execute(estimate_job("NN", "Tesla K40", scheme="CLU",
                                         scale=0.3))
        by_plan = execute(estimate_job("NN", "Tesla K40", plan="clu",
                                       scale=0.3))
        assert by_plan.cycles == by_scheme.cycles


class TestBatching:
    def test_estimate_jobs_never_batch(self):
        # Rung 0 answers are microseconds; fusing them into batched
        # backend groups would only add latency.
        job = estimate_job("NN", "Tesla K40", scheme="CLU", scale=0.3)
        assert batch_key(job) is None
