"""ResultCache: roundtrip, salt rotation, and corrupt-entry recovery."""

import pickle

import pytest

from repro.engine import ResultCache, execute, reuse_job, simulate_job
from repro.engine.cache import SAFE_ENTRY_GLOBALS, safe_loads_entry


@pytest.fixture
def job():
    return simulate_job("NN", "GTX980", scale=0.2)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundtrip:
    def test_put_then_get(self, cache, job):
        assert ResultCache.is_miss(cache.get(job))
        cache.put(job, {"cycles": 42})
        assert cache.get(job) == {"cycles": 42}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["writes"] == 1

    def test_cached_none_is_not_a_miss(self, cache, job):
        cache.put(job, None)
        assert not ResultCache.is_miss(cache.get(job))

    def test_salt_rotation_invalidates(self, tmp_path, job):
        old = ResultCache(tmp_path / "cache", salt="1.1.0/2")
        old.put(job, "stale")
        new = ResultCache(tmp_path / "cache", salt="1.2.0/2")
        assert ResultCache.is_miss(new.get(job))


class TestCorruptEntries:
    """A broken pickle must read as a miss, be counted, and be deleted
    so the next lookup after the re-run overwrites a clean file —
    never an unpickling traceback inside a request handler."""

    def corrupt(self, cache, job, payload: bytes):
        path = cache.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return path

    @pytest.mark.parametrize("payload", [
        b"",                                     # zero-length file
        b"not a pickle at all",                  # garbage bytes
        pickle.dumps({"cycles": 42})[:-4],       # truncated mid-stream
        b"\x80\x05garbage",                      # valid magic, bad body
    ])
    def test_corrupt_entry_is_miss_and_deleted(self, cache, job, payload):
        path = self.corrupt(cache, job, payload)
        assert ResultCache.is_miss(cache.get(job))
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0
        assert not path.exists(), "bad entry must not survive the miss"

    def test_recompute_overwrites_cleanly(self, cache, job):
        self.corrupt(cache, job, b"garbage")
        assert ResultCache.is_miss(cache.get(job))
        cache.put(job, {"cycles": 7})
        assert cache.get(job) == {"cycles": 7}
        assert cache.stats()["corrupt"] == 1

    def test_unreadable_entry_counts_once_per_lookup(self, cache, job):
        self.corrupt(cache, job, b"junk")
        cache.get(job)
        # The file is gone, so the second lookup is a plain miss.
        assert ResultCache.is_miss(cache.get(job))
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["misses"] == 2


class TestEntryTransfer:
    """The shard tier's warmup path: a shard enumerates its slice with
    ``manifest()``, another node pulls entries with ``export_entry``
    and installs them with ``import_entry`` — byte-for-byte."""

    def test_manifest_lists_exactly_the_salt_slice(self, tmp_path, job):
        cache = ResultCache(tmp_path / "cache", salt="1.0/now")
        other = simulate_job("CONV", "GTX980", scale=0.2)
        cache.put(job, {"cycles": 1})
        cache.put(other, {"cycles": 2})
        manifest = cache.manifest()
        assert manifest["salt_tag"] == cache.salt_tag
        assert manifest["count"] == 2
        assert sorted(manifest["keys"]) == manifest["keys"]
        assert set(manifest["keys"]) == {job.key, other.key}
        # A different salt's slice of the same root is invisible.
        rotated = ResultCache(tmp_path / "cache", salt="2.0/later")
        assert rotated.manifest()["count"] == 0

    def test_export_import_roundtrip_is_bit_identical(self, tmp_path,
                                                      job):
        source = ResultCache(tmp_path / "a")
        target = ResultCache(tmp_path / "b")
        source.put(job, {"cycles": 42, "nested": {"x": [1, 2]}})
        data = source.export_entry(job.key)
        assert data is not None
        assert target.import_entry(job.key, data)
        assert target.path_for_key(job.key).read_bytes() == data
        assert target.get(job) == {"cycles": 42, "nested": {"x": [1, 2]}}

    def test_export_absent_key_is_none(self, cache, job):
        assert cache.export_entry(job.key) is None

    def test_import_rejects_corrupt_payloads(self, cache, job):
        assert not cache.import_entry(job.key, b"not a pickle")
        assert not cache.path_for_key(job.key).exists()
        assert ResultCache.is_miss(cache.get(job))

    def test_bad_keys_are_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.path_for_key("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.path_for_key("xyz")


class _Exec:
    """A classic pickle RCE gadget: unpickling calls ``os.system``."""

    def __reduce__(self):
        import os
        return (os.system, ("true",))


class TestImportSafety:
    """``import_entry`` consumes bytes that arrived over the network
    (``POST /v1/cache/push``), so it must never resolve a global
    outside the known result record types — a crafted payload whose
    reduce hook names ``os.system`` (or any other callable) has to be
    rejected before anything executes, not installed, not run."""

    def test_reduce_gadget_is_rejected_not_executed(self, cache, job):
        payload = pickle.dumps(_Exec())
        assert not cache.import_entry(job.key, payload)
        assert not cache.path_for_key(job.key).exists()
        assert ResultCache.is_miss(cache.get(job))

    def test_unlisted_repro_global_is_rejected(self, cache, job, tmp_path):
        # Even package-internal types outside the allowlist are refused
        # — the allowlist names result records, not "anything repro".
        payload = pickle.dumps(ResultCache(tmp_path / "x"))
        assert not cache.import_entry(job.key, payload)
        assert not cache.path_for_key(job.key).exists()

    def test_bad_key_raises_before_payload_is_parsed(self, cache):
        with pytest.raises(ValueError):
            cache.import_entry("../../etc/cron.d/x", pickle.dumps(_Exec()))

    def test_real_result_record_roundtrips(self, tmp_path):
        # A genuine executor result (a ReuseProfile record) must pass
        # the allowlist, or warmup could never move real entries.
        job = reuse_job("NN", scale=0.05)
        value = execute(job)
        source = ResultCache(tmp_path / "a")
        target = ResultCache(tmp_path / "b")
        source.put(job, value)
        data = source.export_entry(job.key)
        assert target.import_entry(job.key, data)
        assert target.get(job) == value

    def test_safe_loads_entry_allows_plain_containers(self):
        value = {"cycles": 42, "nested": {"x": [1, 2.5, None, "s"]}}
        assert safe_loads_entry(pickle.dumps(value)) == value

    def test_allowlist_globals_resolve(self):
        # Every allowlisted (module, name) must import — a rename in
        # the package would otherwise silently break entry transfer.
        import importlib
        for module, name in sorted(SAFE_ENTRY_GLOBALS):
            assert isinstance(
                getattr(importlib.import_module(module), name), type)
