"""ResultCache: roundtrip, salt rotation, and corrupt-entry recovery."""

import pickle

import pytest

from repro.engine import ResultCache, simulate_job


@pytest.fixture
def job():
    return simulate_job("NN", "GTX980", scale=0.2)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundtrip:
    def test_put_then_get(self, cache, job):
        assert ResultCache.is_miss(cache.get(job))
        cache.put(job, {"cycles": 42})
        assert cache.get(job) == {"cycles": 42}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["writes"] == 1

    def test_cached_none_is_not_a_miss(self, cache, job):
        cache.put(job, None)
        assert not ResultCache.is_miss(cache.get(job))

    def test_salt_rotation_invalidates(self, tmp_path, job):
        old = ResultCache(tmp_path / "cache", salt="1.1.0/2")
        old.put(job, "stale")
        new = ResultCache(tmp_path / "cache", salt="1.2.0/2")
        assert ResultCache.is_miss(new.get(job))


class TestCorruptEntries:
    """A broken pickle must read as a miss, be counted, and be deleted
    so the next lookup after the re-run overwrites a clean file —
    never an unpickling traceback inside a request handler."""

    def corrupt(self, cache, job, payload: bytes):
        path = cache.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return path

    @pytest.mark.parametrize("payload", [
        b"",                                     # zero-length file
        b"not a pickle at all",                  # garbage bytes
        pickle.dumps({"cycles": 42})[:-4],       # truncated mid-stream
        b"\x80\x05garbage",                      # valid magic, bad body
    ])
    def test_corrupt_entry_is_miss_and_deleted(self, cache, job, payload):
        path = self.corrupt(cache, job, payload)
        assert ResultCache.is_miss(cache.get(job))
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0
        assert not path.exists(), "bad entry must not survive the miss"

    def test_recompute_overwrites_cleanly(self, cache, job):
        self.corrupt(cache, job, b"garbage")
        assert ResultCache.is_miss(cache.get(job))
        cache.put(job, {"cycles": 7})
        assert cache.get(job) == {"cycles": 7}
        assert cache.stats()["corrupt"] == 1

    def test_unreadable_entry_counts_once_per_lookup(self, cache, job):
        self.corrupt(cache, job, b"junk")
        cache.get(job)
        # The file is gone, so the second lookup is a plain miss.
        assert ResultCache.is_miss(cache.get(job))
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["misses"] == 2
