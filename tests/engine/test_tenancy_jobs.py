"""The ``bound`` and ``cotenant`` job kinds: identity, execution,
batching exclusion."""

import pickle

import pytest

from repro.analysis.bound import BoundReport
from repro.engine import bound_job, cotenant_job, execute, measure_job
from repro.engine.executors import batch_key
from repro.tenancy import TenantSpec
from repro.tenancy.runner import TenancyReport

GPU = "GTX980"


class TestBoundJobIdentity:
    def test_key_is_stable_across_constructions(self):
        a = bound_job("NN", GPU, scale=0.3)
        b = bound_job("NN", GPU, scale=0.3)
        assert a == b and a.key == b.key

    def test_schedule_knobs_never_enter_the_key(self):
        """The bound is schedule-free, so one cache entry serves every
        seed and scheme that asks about the same (workload, GPU,
        scale) — the builder does not even accept those knobs."""
        with pytest.raises(TypeError):
            bound_job("NN", GPU, seed=3)
        with pytest.raises(TypeError):
            bound_job("NN", GPU, scheme="CLU")

    def test_every_knob_feeds_the_key(self):
        base = bound_job("NN", GPU, scale=0.3)
        variants = [
            bound_job("HS", GPU, scale=0.3),
            bound_job("NN", "Tesla K40", scale=0.3),
            bound_job("NN", GPU, scale=0.5),
            bound_job("NN", GPU, scale=0.3, l2_divisor=2),
        ]
        keys = {base.key, *(v.key for v in variants)}
        assert len(keys) == len(variants) + 1

    def test_key_differs_from_measure_job(self):
        bound = bound_job("NN", GPU, scale=0.3)
        sim = measure_job("NN", GPU, scale=0.3)
        assert bound.kind == "bound"
        assert bound.key != sim.key


class TestCotenantJobIdentity:
    def test_descriptor_forms_alias_one_key(self):
        """Specs, mappings and JSON-decoded dicts of the same mix must
        hash identically — the cache would otherwise fragment by the
        caller's spelling."""
        by_spec = cotenant_job(
            [TenantSpec(workload="NN", scheme="CLU", scale=0.3),
             TenantSpec(workload="HS", scale=0.3)], GPU)
        by_dict = cotenant_job(
            [{"workload": "NN", "scheme": "CLU", "scale": 0.3},
             {"workload": "HS", "scale": 0.3}], GPU)
        assert by_spec.key == by_dict.key

    def test_every_knob_feeds_the_key(self):
        tenants = [{"workload": "NN", "scale": 0.3},
                   {"workload": "HS", "scale": 0.3}]
        base = cotenant_job(tenants, GPU)
        variants = [
            cotenant_job(tenants, "Tesla K40"),
            cotenant_job(tenants, GPU, policy="sm-split"),
            cotenant_job(tenants, GPU, seed=1),
            cotenant_job(tenants, GPU, warmups=0),
            cotenant_job(list(reversed(tenants)), GPU),
            cotenant_job([{**tenants[0], "bypass": True}, tenants[1]],
                         GPU),
        ]
        keys = {base.key, *(v.key for v in variants)}
        assert len(keys) == len(variants) + 1

    def test_invalid_mix_rejected_at_build_time(self):
        with pytest.raises(ValueError):
            cotenant_job([], GPU)
        with pytest.raises(ValueError):
            cotenant_job([{"workload": "NN"}], GPU, policy="mystery")
        with pytest.raises(ValueError):
            cotenant_job([{"workload": "NN", "scheme": "PFH+TOT"}], GPU)

    def test_jobs_pickle(self):
        job = cotenant_job([{"workload": "NN", "scale": 0.3},
                            {"workload": "HS", "scale": 0.3}], GPU)
        assert pickle.loads(pickle.dumps(job)) == job


class TestExecution:
    def test_bound_executes_to_report(self):
        result = execute(bound_job("NN", GPU, scale=0.25))
        assert isinstance(result, BoundReport)
        assert 0.0 <= result.bound_hit_rate <= 1.0

    def test_cotenant_executes_to_tenancy_report(self):
        job = cotenant_job([{"workload": "NN", "scale": 0.25},
                            {"workload": "HS", "scale": 0.25}], GPU,
                           warmups=0)
        result = execute(job)
        assert isinstance(result, TenancyReport)
        assert len(result.tenants) == 2
        assert result.violations() == []

    def test_neither_kind_batches(self):
        assert batch_key(bound_job("NN", GPU)) is None
        assert batch_key(cotenant_job([{"workload": "NN"}], GPU)) is None
