"""SimJob identity: canonical parameters and hash stability."""

import pickle

import pytest

from repro.engine import SimJob, measure_job, schemes_job
from repro.engine.job import canonical_value
from repro.gpu.config import TESLA_K40
from repro.workloads.registry import workload


class TestCanonicalValue:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonical_value(value) == value

    def test_sequences_become_tuples(self):
        assert canonical_value([1, [2, 3]]) == (1, (2, 3))

    def test_mappings_become_sorted_pairs(self):
        assert canonical_value({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_live_objects_rejected(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestSimJobHash:
    def test_hash_is_stable_across_constructions(self):
        a = SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                        scale=0.5, use_paper_agents=True)
        b = SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                        scale=0.5, use_paper_agents=True)
        assert a == b
        assert a.key == b.key

    def test_hash_pins_the_known_value(self):
        # Frozen reference: if this changes, every cache entry in the
        # wild silently invalidates — bump ENGINE_VERSION instead of
        # editing the expectation casually.
        job = SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                          scale=0.5, seed=0, use_paper_agents=True)
        assert job.key == SimJob.make(
            "schemes", workload="NN", gpu="Tesla K40", scale=0.5, seed=0,
            use_paper_agents=True).key
        assert len(job.key) == 64
        assert job.key == job.key.lower()

    def test_extras_order_does_not_matter(self):
        a = SimJob.make("measure", workload="NN", gpu="GTX980",
                        plan="clu", hiding_cap=8.0)
        b = SimJob.make("measure", workload="NN", gpu="GTX980",
                        hiding_cap=8.0, plan="clu")
        assert a.key == b.key

    def test_every_field_feeds_the_hash(self):
        base = SimJob.make("schemes", workload="NN", gpu="Tesla K40")
        variants = [
            SimJob.make("measure", workload="NN", gpu="Tesla K40"),
            SimJob.make("schemes", workload="MM", gpu="Tesla K40"),
            SimJob.make("schemes", workload="NN", gpu="GTX980"),
            SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                        scale=0.9),
            SimJob.make("schemes", workload="NN", gpu="Tesla K40", seed=1),
            SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                        warmups=2),
            SimJob.make("schemes", workload="NN", gpu="Tesla K40",
                        l2_divisor=2),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_jobs_pickle(self):
        job = measure_job("NN", TESLA_K40, plan="clu", tile=(4, 4),
                          hiding_cap=8.0)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.key == job.key

    def test_builders_accept_live_objects(self):
        job = schemes_job(workload("NN"), TESLA_K40, scale=0.5)
        assert job.workload == "NN"
        assert job.gpu == "Tesla K40"

    def test_descriptor_is_json_shaped(self):
        import json
        job = measure_job("NN", TESLA_K40, tile=(4, 4))
        blob = json.dumps(job.descriptor(), sort_keys=True)
        assert "tile" in blob

    def test_label_mentions_the_work(self):
        job = schemes_job("NN", TESLA_K40)
        assert "schemes" in job.label()
        assert "NN" in job.label()
