"""SweepRunner: determinism, caching, dedup and invalidation.

The determinism tests run a small fig12 sub-matrix three ways —
serial, 2-way parallel, and from a warm cache — and require the
``KernelMetrics`` to be identical, which is the engine's core
contract: how a batch executes must never change what it computes.
"""

import dataclasses

import pytest

from repro.engine import ResultCache, SimJob, SweepRunner, schemes_job
from repro.engine.cache import CacheStats
from repro.engine.executors import execute, executor
from repro.gpu.config import TESLA_K40

#: A small fig12 sub-matrix: two apps with exploitable locality, one
#: without, on one platform, at reduced scale.
SUB_MATRIX = ("NN", "ATX", "BS")
SUB_SCHEMES = ("BSL", "CLU")


def sub_matrix_jobs():
    return [schemes_job(abbr, TESLA_K40, scale=0.3, use_paper_agents=True,
                        schemes=SUB_SCHEMES)
            for abbr in SUB_MATRIX]


def assert_metrics_identical(a, b):
    """Bit-identical comparison of two SchemeResults batches."""
    for result_a, result_b in zip(a, b):
        assert result_a.workload == result_b.workload
        assert set(result_a.metrics) == set(result_b.metrics)
        for scheme, metrics_a in result_a.metrics.items():
            metrics_b = result_b.metrics[scheme]
            assert metrics_a.cycles == metrics_b.cycles
            assert metrics_a.sm_cycles == metrics_b.sm_cycles
            assert metrics_a.l2_read_transactions == \
                metrics_b.l2_read_transactions
            assert metrics_a.l2_write_transactions == \
                metrics_b.l2_write_transactions
            assert metrics_a.dram_transactions == metrics_b.dram_transactions
            assert dataclasses.asdict(metrics_a.l1) == \
                dataclasses.asdict(metrics_b.l1)
            assert dataclasses.asdict(metrics_a.l2) == \
                dataclasses.asdict(metrics_b.l2)
            assert metrics_a.overhead_cycles == metrics_b.overhead_cycles
            assert metrics_a.occupancy_weighted_warps == \
                metrics_b.occupancy_weighted_warps


@pytest.fixture(scope="module")
def serial_results():
    return SweepRunner(jobs=1).run(sub_matrix_jobs())


class TestDeterminism:
    def test_parallel_identical_to_serial(self, serial_results):
        parallel = SweepRunner(jobs=2).run(sub_matrix_jobs())
        assert_metrics_identical(serial_results, parallel)

    def test_cache_hit_identical_to_serial(self, serial_results, tmp_path):
        cache = ResultCache(tmp_path)
        cold_runner = SweepRunner(jobs=1, cache=cache)
        cold = cold_runner.run(sub_matrix_jobs())
        assert cold_runner.stats.cache_hits == 0
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = warm_runner.run(sub_matrix_jobs())
        assert warm_runner.stats.cache_hits == len(SUB_MATRIX)
        assert warm_runner.stats.executed == 0
        assert_metrics_identical(serial_results, cold)
        assert_metrics_identical(serial_results, warm)

    def test_results_follow_submission_order(self, serial_results):
        shuffled = sub_matrix_jobs()[::-1]
        reversed_results = SweepRunner(jobs=2).run(shuffled)
        assert [r.workload for r in reversed_results] == \
            list(SUB_MATRIX)[::-1]


class TestDedup:
    def test_identical_jobs_compute_once(self):
        calls = []

        @executor("_test_counting")
        def _count(job):
            calls.append(job.key)
            return job.extra("value")

        try:
            job = SimJob.make("_test_counting", value=7)
            results = SweepRunner().run([job, job, job])
        finally:
            from repro.engine.executors import EXECUTORS
            del EXECUTORS["_test_counting"]
        assert results == [7, 7, 7]
        assert len(calls) == 1

    def test_unknown_kind_is_reported(self):
        with pytest.raises(KeyError, match="unknown job kind"):
            execute(SimJob.make("no-such-kind"))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestCacheInvalidation:
    def test_version_salt_change_forces_rerun(self, tmp_path):
        job = sub_matrix_jobs()[0]
        cache_v1 = ResultCache(tmp_path, salt="v1")
        runner_v1 = SweepRunner(cache=cache_v1)
        first = runner_v1.run_one(job)
        assert runner_v1.stats.executed == 1

        # Same salt: pure hit.
        rerun = SweepRunner(cache=ResultCache(tmp_path, salt="v1"))
        assert_metrics_identical([first], [rerun.run_one(job)])
        assert rerun.stats.cache_hits == 1
        assert rerun.stats.executed == 0

        # New salt: the stale entry is invisible, the job re-executes.
        bumped = SweepRunner(cache=ResultCache(tmp_path, salt="v2"))
        again = bumped.run_one(job)
        assert bumped.stats.cache_hits == 0
        assert bumped.stats.executed == 1
        assert_metrics_identical([first], [again])

    @pytest.mark.parametrize("garbage", [
        b"not a pickle",   # UnpicklingError
        b"garbage\n",      # 'g' is the GET opcode -> ValueError
        b"",               # EOFError
    ])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path, salt="v1")
        job = SimJob.make("schemes", workload="NN", gpu="Tesla K40")
        path = cache.path_for(job)
        path.parent.mkdir(parents=True)
        path.write_bytes(garbage)
        assert ResultCache.is_miss(cache.get(job))

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        job = SimJob.make("table2", workload="NN")
        cache.put(job, None)
        assert cache.get(job) is None
        assert not ResultCache.is_miss(None)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["writes"]) == (1, 0, 1)

    def test_env_override_sets_cache_root(self, tmp_path, monkeypatch):
        from repro.engine.cache import default_cache_root
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"


class TestBatchedBackend:
    """Grouped dispatch through the batched struct-of-arrays core."""

    def batchable_jobs(self):
        from repro.engine.executors import measure_job, simulate_job
        return [
            measure_job("NN", TESLA_K40, plan="baseline", scale=0.3),
            measure_job("NN", TESLA_K40, plan="rd", scale=0.3),
            measure_job("NN", TESLA_K40, plan="clu", scheme="CLU",
                        scale=0.3),
            simulate_job("NN", TESLA_K40, scheme="BSL", scale=0.3, seed=2),
            simulate_job("ATX", TESLA_K40, scheme="RD", scale=0.3),
        ]

    def fingerprints(self, results):
        from repro.gpu.metrics import metrics_fingerprint
        return [metrics_fingerprint(m) for m in results]

    def test_grouped_identical_to_serial(self):
        jobs = self.batchable_jobs()
        serial = SweepRunner(backend="serial").run(jobs)
        grouped_runner = SweepRunner(backend="batched")
        grouped = grouped_runner.run(jobs)
        assert self.fingerprints(serial) == self.fingerprints(grouped)
        # Four NN jobs fused into one group; the lone ATX job did not.
        assert grouped_runner.stats.batches == 1
        assert grouped_runner.stats.batched_jobs == 4

    def test_grouped_identical_on_pool(self):
        jobs = self.batchable_jobs()
        serial = SweepRunner(backend="serial").run(jobs)
        pooled = SweepRunner(backend="batched", jobs=2).run(jobs)
        assert self.fingerprints(serial) == self.fingerprints(pooled)

    def test_serial_backend_never_groups(self):
        runner = SweepRunner(backend="serial")
        runner.run(self.batchable_jobs())
        assert runner.stats.batches == 0
        assert runner.stats.batched_jobs == 0

    def test_env_default_backend(self, monkeypatch):
        from repro.gpu.backend import BACKEND_ENV
        monkeypatch.setenv(BACKEND_ENV, "batched")
        runner = SweepRunner()  # backend=None defers to the env
        runner.run(self.batchable_jobs())
        assert runner.stats.batches == 1

    def test_unbatchable_kinds_stay_per_job(self):
        from repro.engine.executors import batch_key, reuse_job, table2_job
        assert batch_key(table2_job("NN")) is None
        assert batch_key(reuse_job("NN")) is None
        runner = SweepRunner(backend="batched")
        runner.run([table2_job("NN"), table2_job("ATX")])
        assert runner.stats.batches == 0

    def test_profile_receives_batch_spans(self):
        from repro.obs.profile import ProfileSession
        session = ProfileSession("test")
        runner = SweepRunner(backend="batched", profile=session)
        jobs = self.batchable_jobs()
        runner.run(jobs)
        assert len(session.batch_spans) == 1
        span = session.batch_spans[0]
        assert span.jobs == 4 and span.duration > 0
        assert len(session.job_spans) == len(jobs)

    def test_progress_line_marks_batches(self, capsys):
        runner = SweepRunner(backend="batched", progress=True)
        jobs = self.batchable_jobs()[:4]  # one group, batch of 4
        runner.run(jobs)
        err = capsys.readouterr().err
        assert "[batch 4]" in err
