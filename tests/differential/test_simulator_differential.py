"""End-to-end differential fuzzing: fast simulation core vs oracle.

Random kernels (grids, block sizes, trace shapes, stream tags,
scattered and single-lane accesses), random platforms (including
shrunk-cache variants that force constant eviction), random schemes,
schedulers, seeds and warm-up counts are simulated twice — once on
the :mod:`repro.gpu.fastpath` core and once on the
:mod:`repro.gpu.refmodel` oracle — and the resulting
:class:`~repro.gpu.metrics.KernelMetrics` must be *bit-identical*,
established via :func:`repro.gpu.metrics.canonical_metrics` (floats
compared through ``repr``).

Only :mod:`random` is used; the harness stays dependency-free.  Case
counts scale with ``REPRO_FUZZ_CASES`` (see the cache-level fuzzer).
"""

from __future__ import annotations

import os
import random
from dataclasses import replace

import pytest

from repro import api
from repro.gpu.config import KB, PLATFORMS
from repro.gpu.metrics import canonical_metrics, metrics_fingerprint
from repro.gpu.scheduler import SCHEDULERS
from repro.gpu.simulator import GpuSimulator
from repro.kernels.access import read, write
from repro.kernels.kernel import (AddressSpace, ArrayRef, Dim3, KernelSpec,
                                  LocalityCategory)

CASES = int(os.environ.get("REPRO_FUZZ_CASES", "80"))

#: End-to-end runs cost far more than cache op streams; scale down.
SIM_CASES = max(12, CASES // 2)

PLATFORM_NAMES = sorted(PLATFORMS)


def random_config(rng):
    """A real platform, sometimes with caches shrunk to force churn."""
    base = PLATFORMS[rng.choice(PLATFORM_NAMES)]
    roll = rng.random()
    if roll < 0.40:
        return base
    if roll < 0.70:
        # Tiny L2: every working set spills, exercising the
        # pseudo-random replacement and write-back paths hard.
        return replace(base, l2_size=32 * KB)
    # Tiny L1 *and* L2: constant eviction at both levels.
    return replace(base, l1_size=max(base.l1_line * 16, base.l1_size // 8),
                   l2_size=64 * KB)


def random_kernel(rng, case):
    """A deterministic synthetic kernel with randomly drawn shape.

    All randomness is consumed *before* the trace closure is built, so
    the trace is a pure function of the CTA index — a requirement for
    both simulation cores (traces are memoized per CTA).
    """
    two_d = rng.random() < 0.4
    if two_d:
        grid_x, grid_y = rng.randrange(2, 8), rng.randrange(2, 7)
    else:
        grid_x, grid_y = rng.randrange(4, 48), 1
    n_ctas = grid_x * grid_y
    warps = rng.choice([1, 2, 4])

    space = AddressSpace()
    table_rows = rng.randrange(2, 10)
    table = space.alloc("table", table_rows, 32)
    data = space.alloc("data", n_ctas * 2, 32)
    scatter = space.alloc("scatter", max(64, n_ctas), 32)

    reps = rng.randrange(1, 4)
    stream_tag = rng.random() < 0.5
    do_write = rng.random() < 0.6
    scatter_stride = rng.choice([4, 64, 136, 260])
    scatter_lanes = rng.choice([1, 8, 32])
    n_scatter = scatter.rows

    def trace(bx, by, bz):
        u = by * grid_x + bx
        accesses = []
        for r in range(reps):
            accesses.append(read(data.addr((u * 2 + r) % (n_ctas * 2), 0),
                                 4, 32, 4, stream=stream_tag))
        for r in range(table_rows):
            accesses.append(read(table.addr(r, 0), 4, 32, 4))
        accesses.append(read(scatter.addr(u % n_scatter, 0),
                             scatter_stride, scatter_lanes, 4))
        accesses.append(read(table.addr(u % table_rows, 0), 4, 1, 4))
        if do_write:
            accesses.append(write(data.addr(u % (n_ctas * 2), 0),
                                  4, 32, 4, stream=stream_tag))
        return accesses

    if two_d:
        refs = (
            ArrayRef("table", (("by",), ("j",)), weight=2.0),
            ArrayRef("data", (("by",), ("bx", "tx"))),
            ArrayRef("out", (("by",), ("bx", "tx")), is_write=True),
        )
    else:
        refs = (
            ArrayRef("data", (("bx", "tx"),)),
            ArrayRef("table", (("j",),), weight=2.0),
            ArrayRef("out", (("bx", "tx"),), is_write=True),
        )
    return KernelSpec(
        name=f"fuzz-{case}", grid=Dim3(grid_x, grid_y),
        block=Dim3(32 * warps), trace=trace, regs_per_thread=16,
        category=LocalityCategory.ALGORITHM, array_refs=refs)


def assert_bit_identical(kernel, config, *, scheme=None, plan=None,
                         scheduler=None, seed=0, warmups=1,
                         record_per_cta=False, l1_enabled=True,
                         label=""):
    """Simulate on both cores and require bit-identical metrics."""
    sims = [GpuSimulator(config, scheduler=scheduler, fast=fast,
                         l1_enabled=l1_enabled)
            for fast in (False, True)]
    got = [api.simulate(kernel, sim, scheme=scheme, plan=plan, seed=seed,
                        warmups=warmups, record_per_cta=record_per_cta)
           for sim in sims]
    ref, fast = (canonical_metrics(m) for m in got)
    assert ref == fast, f"divergence: {label}"
    assert metrics_fingerprint(got[0]) == metrics_fingerprint(got[1]), label


def test_simulator_differential_fuzz():
    """The main fuzz loop: random everything, zero divergence allowed."""
    for case in range(SIM_CASES):
        rng = random.Random(0xFA57 + case)
        kernel = random_kernel(rng, case)
        config = random_config(rng)
        scheme = rng.choice(["BSL", "BSL", "RD", "RD", "CLU", "CLU",
                             "CLU+TOT+BPS"])
        scheduler = SCHEDULERS[rng.choice(sorted(SCHEDULERS))]
        plan = None
        if scheme in ("CLU+TOT", "CLU+TOT+BPS", "PFH+TOT"):
            # Pin active_agents so plan construction itself stays cheap;
            # the voting path gets its own dedicated test below.
            plan = api.cluster(kernel, scheme, gpu=config,
                               active_agents=rng.randrange(1, 4))
            scheme = None
        assert_bit_identical(
            kernel, config, scheme=scheme, plan=plan, scheduler=scheduler,
            seed=rng.randrange(0, 1 << 16), warmups=rng.randrange(0, 3),
            record_per_cta=rng.random() < 0.3,
            l1_enabled=rng.random() > 0.15,
            label=f"case {case}: {kernel.name} on {config.name} "
                  f"scheme={scheme or (plan and plan.scheme)}")


@pytest.mark.parametrize("scheme", ["CLU+TOT", "PFH+TOT"])
def test_throttled_schemes_vote_identically(scheme):
    """Scheme planning that *itself* simulates (the throttling vote)
    must reach the same plan and metrics on either core."""
    rng = random.Random(0x707E + len(scheme))
    kernel = random_kernel(rng, 9000)
    config = PLATFORMS["Tesla K40"]
    assert_bit_identical(kernel, config, scheme=scheme, seed=11, warmups=1,
                         label=f"vote path, scheme={scheme}")


def test_registry_workloads_differential():
    """A slice of the paper's real workload registry, both cores."""
    for abbrev, gpu_name, scheme in [("NN", "Tesla K40", "CLU"),
                                     ("ATX", "GTX980", "RD"),
                                     ("BS", "GTX1080", "BSL")]:
        metrics = []
        for fast in (False, True):
            metrics.append(api.simulate(abbrev, gpu_name, scheme=scheme,
                                        scale=0.1, seed=3, fast=fast))
        assert canonical_metrics(metrics[0]) == canonical_metrics(metrics[1]), \
            f"{abbrev}/{gpu_name}/{scheme}"
