"""Cache-level differential fuzzing: fast models vs the golden oracle.

Random operation streams (access/install/contains/flush/settle/
reset_stats, random geometries, both write policies, LRU and
pseudo-random replacement) are driven through a
:mod:`repro.gpu.refmodel` cache and its :mod:`repro.gpu.fastpath`
twin in lockstep.  Every return value and every counter must match
exactly — floats bit for bit, since both sides must run the same
arithmetic in the same order.

The case count scales with ``REPRO_FUZZ_CASES`` (the per-test number
of random sequences; CI runs the default).  Only :mod:`random` is
used — the harness must stay dependency-free.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.gpu.config import WritePolicy
from repro.gpu.fastpath import FastSectoredCache, FastSetAssociativeCache
from repro.gpu.refmodel import SectoredCache, SetAssociativeCache

#: Sequences per fuzz test; override with REPRO_FUZZ_CASES to fuzz
#: longer locally (the seed space is disjoint per test).
CASES = int(os.environ.get("REPRO_FUZZ_CASES", "80"))

#: (line_size, assoc, n_sets) geometries, spanning the platform zoo
#: plus deliberately tiny caches that force constant eviction.
GEOMETRIES = [
    (128, 4, 2),
    (128, 4, 32),
    (32, 8, 4),
    (32, 8, 64),
    (32, 2, 1),
    (64, 1, 8),  # direct-mapped
]


def stats_tuple(cache):
    s = cache.stats
    return (s.accesses, s.hits, s.misses, s.reserved_hits,
            s.write_evictions)


def random_ops(rng, line_size, n_ops):
    """A random op stream over a footprint that stresses aliasing."""
    footprint = rng.choice([4, 16, 64]) * line_size
    ops = []
    now = 0.0
    for _ in range(n_ops):
        now += rng.choice([0.0, 1.0, 7.5, 100.0])
        addr = rng.randrange(footprint)
        kind = rng.random()
        if kind < 0.70:
            ops.append(("access", addr, now, rng.choice([10.0, 200.0, 350.0]),
                        rng.random() < 0.25))
        elif kind < 0.80:
            ops.append(("install", addr, now + rng.choice([0.0, 50.0])))
        elif kind < 0.90:
            ops.append(("contains", addr))
        elif kind < 0.94:
            ops.append(("flush",))
        elif kind < 0.98:
            ops.append(("settle",))
        else:
            ops.append(("reset_stats",))
    return ops


def run_lockstep(ref, fast, ops, sectored=False, rng=None):
    """Apply ops to both caches, asserting identical results as we go."""
    for step, op in enumerate(ops):
        sector = rng.randrange(4) if sectored and rng is not None else 0
        if op[0] == "access":
            _, addr, now, fill, is_write = op
            if sectored:
                got_ref = ref.access(addr, now, fill, is_write, sector)
                got_fast = fast.access(addr, now, fill, is_write, sector)
            else:
                got_ref = ref.access(addr, now, fill, is_write)
                got_fast = fast.access(addr, now, fill, is_write)
            assert got_ref == got_fast, f"step {step}: access {op}"
            # bit-identity, not just ==
            assert repr(got_ref[1]) == repr(got_fast[1]), f"step {step}"
        elif op[0] == "install":
            _, addr, ready = op
            if sectored:
                ref.install(addr, ready, sector)
                fast.install(addr, ready, sector)
            else:
                ref.install(addr, ready)
                fast.install(addr, ready)
        elif op[0] == "contains":
            _, addr = op
            if sectored:
                assert ref.contains(addr, sector) == fast.contains(
                    addr, sector), f"step {step}"
            else:
                assert ref.contains(addr) == fast.contains(addr), \
                    f"step {step}"
        elif op[0] == "flush":
            ref.flush()
            fast.flush()
        elif op[0] == "settle":
            ref.settle()
            fast.settle()
        elif op[0] == "reset_stats":
            ref.reset_stats()
            fast.reset_stats()
        assert stats_tuple(ref) == stats_tuple(fast), f"step {step}: {op}"


@pytest.mark.parametrize("policy", [WritePolicy.WRITE_EVICT,
                                    WritePolicy.WRITE_BACK_ALLOCATE])
@pytest.mark.parametrize("random_replacement", [False, True])
def test_set_associative_lockstep(policy, random_replacement):
    for case in range(CASES):
        rng = random.Random(0xD1FF + case)
        line, assoc, n_sets = rng.choice(GEOMETRIES)
        size = line * assoc * n_sets
        ref = SetAssociativeCache(size, line, assoc, policy,
                                  random_replacement=random_replacement)
        fast = FastSetAssociativeCache(size, line, assoc, policy,
                                       random_replacement=random_replacement)
        ops = random_ops(rng, line, n_ops=rng.randrange(40, 200))
        run_lockstep(ref, fast, ops)


@pytest.mark.parametrize("sectors", [1, 2, 4])
def test_sectored_lockstep(sectors):
    for case in range(CASES // 2):
        rng = random.Random(0x5EC7 + 1000 * sectors + case)
        line, assoc, n_sets = rng.choice(GEOMETRIES)
        size = line * assoc * n_sets * sectors
        ref = SectoredCache(size, line, assoc, sectors,
                            WritePolicy.WRITE_EVICT)
        fast = FastSectoredCache(size, line, assoc, sectors,
                                 WritePolicy.WRITE_EVICT)
        ops = random_ops(rng, line, n_ops=rng.randrange(40, 160))
        run_lockstep(ref, fast, ops, sectored=True, rng=rng)


def test_random_replacement_rng_state_tracks():
    """The LCG state itself must stay in lockstep through evictions.

    A long write-back-allocate stream over a 2-set cache forces
    thousands of pseudo-random victim picks; one skipped or extra LCG
    step on either side desynchronizes every subsequent eviction.
    """
    rng = random.Random(7)
    ref = SetAssociativeCache(32 * 8 * 2, 32, 8,
                              WritePolicy.WRITE_BACK_ALLOCATE,
                              random_replacement=True)
    fast = FastSetAssociativeCache(32 * 8 * 2, 32, 8,
                                   WritePolicy.WRITE_BACK_ALLOCATE,
                                   random_replacement=True)
    for i in range(2000):
        addr = rng.randrange(64 * 32)
        is_write = rng.random() < 0.3
        assert ref.access(addr, float(i), 200.0, is_write) == \
            fast.access(addr, float(i), 200.0, is_write), f"op {i}"
    assert stats_tuple(ref) == stats_tuple(fast)
