"""Differential fuzzing: batched struct-of-arrays backend vs serial.

The batched backend (:mod:`repro.gpu.batched`) runs a whole batch of
jobs — same kernel and platform, different plans/seeds/knobs — over one
pooled struct-of-arrays cache arena.  Its contract is *bit-identity*
with ``len(items)`` independent serial runs, the same bar the fast
core holds against the dict-based oracle.

Three nets, tightening in scope:

* random batch compositions in lockstep against the serial path
  (plans, seeds, warm-ups, schedulers, timing knobs, per-CTA records
  all drawn randomly);
* the ``REPRO_BACKEND=batched`` env seam routing ordinary
  single-job :func:`repro.api.simulate` calls;
* the checked-in golden fingerprints recomputed entirely under the
  batched backend.

Case counts scale with ``REPRO_FUZZ_CASES`` like the other
differential harnesses.
"""

from __future__ import annotations

import json
import os
import random

from repro import api
from repro.gpu.backend import BACKEND_ENV, BatchItem, simulate_batch
from repro.gpu.metrics import canonical_metrics, metrics_fingerprint
from repro.gpu.scheduler import SCHEDULERS

from tests.differential.test_simulator_differential import (
    random_config,
    random_kernel,
)
from tests.integration.test_goldens import (
    GOLDEN_PATH,
    SCALE,
    SEED,
    WARMUPS,
)

CASES = int(os.environ.get("REPRO_FUZZ_CASES", "80"))

#: Each case simulates a whole batch twice; scale down accordingly.
BATCH_CASES = max(8, CASES // 10)

SCHEDULER_NAMES = sorted(SCHEDULERS)


def random_item(rng, kernel, config) -> BatchItem:
    """One randomly drawn batch member (plan + per-job knobs)."""
    scheme = rng.choice(["BSL", "BSL", "RD", "CLU", "CLU", "CLU+TOT+BPS"])
    plan = None
    if scheme != "BSL":
        # Pin active_agents for the throttled scheme so plan building
        # stays cheap; the voting path is covered by the simulator
        # differential suite.
        kwargs = {"active_agents": rng.randrange(1, 4)} \
            if scheme == "CLU+TOT+BPS" else {}
        plan = api.cluster(kernel, scheme, gpu=config, **kwargs)
    return BatchItem(
        plan=plan,
        seed=rng.randrange(0, 1 << 16),
        warmups=rng.randrange(0, 3),
        record_per_cta=rng.random() < 0.3,
        scheduler=SCHEDULERS[rng.choice(SCHEDULER_NAMES)],
        hiding_cap=rng.choice([14.0, 14.0, 8.0]),
        l1_enabled=rng.random() > 0.15,
        join_stagger=rng.choice([6, 6, 3]))


def test_batched_backend_fuzz():
    """Random batch compositions, zero divergence allowed."""
    for case in range(BATCH_CASES):
        rng = random.Random(0xBA7C + case)
        kernel = random_kernel(rng, case)
        config = random_config(rng)
        items = [random_item(rng, kernel, config)
                 for _ in range(rng.randrange(2, 7))]
        serial = simulate_batch(config, kernel, items, backend="serial")
        batched = simulate_batch(config, kernel, items, backend="batched")
        assert len(serial) == len(batched) == len(items)
        for i, (ref, got) in enumerate(zip(serial, batched)):
            assert canonical_metrics(ref) == canonical_metrics(got), \
                f"case {case} item {i}: {kernel.name} on {config.name}"
            assert metrics_fingerprint(ref) == metrics_fingerprint(got)


def test_batch_order_does_not_leak_state():
    """Reversing a batch must not change any member's metrics — the
    arena checkout has to isolate slots completely."""
    rng = random.Random(0x0D0E)
    kernel = random_kernel(rng, 7000)
    config = random_config(rng)
    items = [random_item(rng, kernel, config) for _ in range(5)]
    forward = simulate_batch(config, kernel, items, backend="batched")
    backward = simulate_batch(config, kernel, list(reversed(items)),
                              backend="batched")
    for ref, got in zip(forward, reversed(backward)):
        assert canonical_metrics(ref) == canonical_metrics(got)


def test_env_seam_routes_single_jobs(monkeypatch):
    """``REPRO_BACKEND=batched`` silently routes ordinary one-job
    ``api.simulate`` calls through the batched core, bit-identically."""
    serial = api.simulate("NN", "Tesla K40", scheme="CLU", scale=0.2,
                          seed=5, warmups=1)
    monkeypatch.setenv(BACKEND_ENV, "batched")
    routed = api.simulate("NN", "Tesla K40", scheme="CLU", scale=0.2,
                          seed=5, warmups=1)
    assert metrics_fingerprint(serial) == metrics_fingerprint(routed)


def test_goldens_hold_under_batched_backend(monkeypatch):
    """A slice of the checked-in golden fingerprints, recomputed with
    the batched backend as the process default."""
    if not GOLDEN_PATH.exists():
        import pytest
        pytest.skip("no golden fixture checked in")
    golden = json.loads(GOLDEN_PATH.read_text())
    monkeypatch.setenv(BACKEND_ENV, "batched")
    for cell in ("NN/Tesla K40/BSL", "NN/Tesla K40/CLU",
                 "ATX/GTX980/RD", "BS/Tesla K40/CLU+TOT+BPS"):
        wl, gpu, scheme = cell.split("/")
        metrics = api.simulate(wl, gpu, scheme=scheme, scale=SCALE,
                               seed=SEED, warmups=WARMUPS)
        assert metrics_fingerprint(metrics) == golden[cell], cell
