"""ProfileSession artifact tests: schema-valid summaries, trace export."""

import json

import pytest

from repro.engine import SweepRunner, schemes_job
from repro.gpu.config import TESLA_K40
from repro.obs import (
    ProfileSession,
    SchemaError,
    histogram,
    validate,
    validate_profile,
)


def profiled_session():
    """One tiny profiled sweep, the way the CLI wires it."""
    session = ProfileSession(label="test", argv=["fig12"])
    runner = SweepRunner(profile=session)
    with session.phase("fig12"):
        results = runner.run([
            schemes_job("BS", TESLA_K40, scale=0.3, seed=0,
                        use_paper_agents=True, schemes=("BSL", "CLU"))])
        session.observe_results(results)
    session.observe_runner(runner)
    return session


class TestSummary:
    def test_summary_validates_against_checked_in_schema(self):
        validate_profile(profiled_session().summary())

    def test_summary_survives_json_round_trip(self, tmp_path):
        path = tmp_path / "profile.json"
        written = profiled_session().write(path)
        loaded = json.loads(path.read_text())
        validate_profile(loaded)
        assert loaded["meta"]["label"] == written["meta"]["label"] == "test"

    def test_engine_counters_and_cells_recorded(self):
        document = profiled_session().summary()
        assert document["engine"]["executed"] == 1
        assert document["cells"]["observed"] == 2  # BSL + CLU
        top = document["cells"]["top"]
        assert {c["scheme"] for c in top} == {"BSL", "CLU"}
        assert all(c["kernel"] == "BS" for c in top)
        assert document["phases"][0]["name"] == "fig12"
        assert document["job_spans"] == 1

    def test_empty_session_is_still_schema_valid(self):
        validate_profile(ProfileSession().summary())

    def test_schema_rejects_corrupted_document(self):
        document = profiled_session().summary()
        del document["engine"]
        with pytest.raises(SchemaError):
            validate_profile(document)
        with pytest.raises(SchemaError):
            validate_profile({"schema_version": "not-an-int"})


class TestHistogram:
    def test_empty_is_none(self):
        assert histogram([]) is None

    def test_constant_values_fill_first_bin(self):
        h = histogram([5.0, 5.0, 5.0], bins=4)
        assert h["min"] == h["max"] == 5.0
        assert h["counts"] == [3, 0, 0, 0]

    def test_counts_partition_the_values(self):
        h = histogram(range(100), bins=8)
        assert sum(h["counts"]) == 100
        assert h["min"] == 0.0 and h["max"] == 99.0


class TestValidateSubset:
    def test_unsupported_keyword_is_loud(self):
        with pytest.raises(SchemaError):
            validate({}, {"type": "object", "patternProperties": {}})

    def test_enum_and_minimum(self):
        validate(1, {"type": "integer", "enum": [1, 2], "minimum": 0})
        with pytest.raises(SchemaError):
            validate(3, {"enum": [1, 2]})
        with pytest.raises(SchemaError):
            validate(-1, {"type": "integer", "minimum": 0})
