"""Chrome trace export tests: well-formed JSON, monotonic tracks."""

import json

from repro.gpu.simulator import GpuSimulator, simulate
from repro.obs import ChromeTrace, ProfileSession, RecordingTracer
from repro.obs.chrome import GPU_PID, add_wave_spans

from tests.conftest import make_shared_table_kernel


def assert_well_formed(document):
    """The structural contract ``chrome://tracing`` needs."""
    assert set(document) >= {"traceEvents"}
    tracks = {}
    for event in document["traceEvents"]:
        assert event["ph"] in ("X", "M")
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            continue
        assert event["dur"] >= 0
        track = (event["pid"], event["tid"])
        assert event["ts"] >= tracks.get(track, float("-inf")), \
            f"ts not monotonic on track {track}"
        tracks[track] = event["ts"]
    return tracks


class TestChromeTrace:
    def test_sorted_events_put_metadata_first(self):
        trace = ChromeTrace()
        trace.add_complete(pid=1, tid=0, name="b", ts=5.0, dur=1.0)
        trace.add_complete(pid=1, tid=0, name="a", ts=2.0, dur=1.0)
        trace.add_process_name(1, "worker")
        events = trace.sorted_events()
        assert events[0]["ph"] == "M"
        assert [e["name"] for e in events[1:]] == ["a", "b"]

    def test_normalize_rebases_each_pid(self):
        trace = ChromeTrace()
        trace.add_complete(pid=1, tid=0, name="a", ts=100.0, dur=1.0)
        trace.add_complete(pid=2, tid=0, name="b", ts=900.0, dur=1.0)
        trace.normalize()
        assert {e["ts"] for e in trace.events} == {0.0}

    def test_negative_duration_is_clamped(self):
        trace = ChromeTrace()
        trace.add_complete(pid=1, tid=0, name="a", ts=0.0, dur=-0.5)
        assert trace.events[0]["dur"] == 0.0


class TestWrittenArtifact:
    def test_profiled_run_writes_monotonic_trace(self, tmp_path, kepler):
        session = ProfileSession(label="trace-test")
        tracer = RecordingTracer()
        kernel = make_shared_table_kernel()
        simulate(GpuSimulator(kepler), kernel, tracer=tracer)
        session.tracer = tracer
        session.job_span("job-a", 10.0, 0.5, pid=41)
        session.job_span("job-b", 10.6, 0.5, pid=41)
        session.job_span("job-c", 10.2, 0.7, pid=42)

        path = tmp_path / "trace.json"
        session.write_trace(path)
        document = json.loads(path.read_text())
        tracks = assert_well_formed(document)

        # engine worker tracks plus one GPU track per SM with waves
        assert (41, 0) in tracks and (42, 0) in tracks
        sm_tracks = [t for t in tracks if t[0] == GPU_PID]
        assert len(sm_tracks) == len({s.sm for s in tracer.waves})

    def test_wave_spans_carry_cta_args(self, kepler):
        tracer = RecordingTracer()
        simulate(GpuSimulator(kepler), make_shared_table_kernel(),
                 tracer=tracer)
        trace = ChromeTrace()
        add_wave_spans(trace, tracer)
        spans = [e for e in trace.events if e["ph"] == "X"]
        assert len(spans) == len(tracer.waves)
        assert all(e["args"]["ctas"] >= 1 for e in spans)
