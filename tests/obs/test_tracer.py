"""Tracer contract tests: observation only, bit-identical metrics."""

from repro.gpu.simulator import GpuSimulator, simulate
from repro.obs import CACHE_EVENT_KINDS, NULL_TRACER, RecordingTracer, Tracer

from tests.conftest import make_shared_table_kernel


def metric_tuple(m):
    """Every detailed counter a tracer could plausibly perturb."""
    return (m.cycles, m.l1.hits, m.l1.misses, m.l1.accesses,
            m.l2.hits, m.l2.misses, m.l2.accesses,
            m.l2_read_transactions, m.l2_write_transactions,
            m.dram_transactions, m.ctas_executed, tuple(m.ctas_per_sm),
            tuple(m.sm_cycles))


class TestObservationOnly:
    def test_disabled_and_null_and_recording_are_bit_identical(self, kepler):
        kernel = make_shared_table_kernel()
        plain = simulate(GpuSimulator(kepler), kernel, seed=3)
        nulled = simulate(GpuSimulator(kepler), kernel, seed=3,
                          tracer=NULL_TRACER)
        recorded = simulate(GpuSimulator(kepler), kernel, seed=3,
                            tracer=RecordingTracer())
        assert metric_tuple(plain) == metric_tuple(nulled)
        assert metric_tuple(plain) == metric_tuple(recorded)

    def test_tracer_detached_after_run(self, kepler, shared_table_kernel):
        sim = GpuSimulator(kepler)
        tracer = RecordingTracer()
        simulate(sim, shared_table_kernel, tracer=tracer)
        follow_up = RecordingTracer()
        simulate(sim, shared_table_kernel, tracer=follow_up)
        # the first tracer stopped receiving events after its run
        assert tracer.cta_count == shared_table_kernel.n_ctas
        assert follow_up.cta_count == shared_table_kernel.n_ctas


class TestRecordingTracer:
    def test_launch_and_cta_accounting(self, kepler, shared_table_kernel):
        tracer = RecordingTracer()
        metrics = simulate(GpuSimulator(kepler), shared_table_kernel,
                           tracer=tracer)
        assert tracer.launches == [
            (shared_table_kernel.name, kepler.name, "BSL",
             shared_table_kernel.n_ctas)]
        assert tracer.cta_count == metrics.ctas_executed
        assert sum(tracer.cta_cycles.values()) > 0

    def test_wave_timeline_covers_every_cta(self, kepler,
                                            shared_table_kernel):
        tracer = RecordingTracer()
        simulate(GpuSimulator(kepler), shared_table_kernel, tracer=tracer)
        assert tracer.waves, "no wave spans recorded"
        assert sum(s.n_ctas for s in tracer.waves) == \
            shared_table_kernel.n_ctas
        assert all(s.duration >= 0 for s in tracer.waves)
        assert tracer.dispatches > 0

    def test_cache_events_on_cold_run(self, kepler, shared_table_kernel):
        tracer = RecordingTracer()
        metrics = simulate(GpuSimulator(kepler), shared_table_kernel,
                           warmups=0, tracer=tracer)
        assert tracer.cache_count("L1", "miss") == metrics.l1.misses
        assert tracer.cache_count("L2", "miss") == metrics.l2.misses
        for level, kind in tracer.cache_counters:
            assert kind in CACHE_EVENT_KINDS

    def test_max_spans_bounds_the_timeline(self, kepler,
                                           shared_table_kernel):
        tracer = RecordingTracer(max_spans=2)
        simulate(GpuSimulator(kepler), shared_table_kernel, tracer=tracer)
        assert len(tracer.waves) == 2
        assert tracer.dropped_spans > 0

    def test_busy_cycles_view(self, kepler, shared_table_kernel):
        tracer = RecordingTracer()
        simulate(GpuSimulator(kepler), shared_table_kernel, tracer=tracer)
        busy = tracer.busy_cycles_per_sm()
        assert busy
        assert all(v >= 0 for v in busy.values())


class TestProtocolDefault:
    def test_base_tracer_is_a_silent_sink(self):
        tracer = Tracer()
        tracer.launch("k", "g", "BSL", 4)
        tracer.retire("k", 1.0)
        tracer.dispatch(0, 0, 2, 2, 0.0)
        tracer.wave(0, 0, 0.0, 1.0, 2)
        tracer.cta(0, 0, 0, 1.0)
        tracer.cache_event("L1", "miss", 0.0)
