"""TenantSpec / TenantMix: validation and canonical descriptors."""

import pytest

from repro.tenancy import POLICIES, TENANT_SCHEMES, TenantMix, TenantSpec


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec(workload="NN")
        assert spec.scheme == "BSL"
        assert spec.scale == 1.0
        assert spec.active_agents is None
        assert not spec.bypass

    def test_every_demand_scheme_accepted(self):
        for scheme in TENANT_SCHEMES:
            TenantSpec(workload="NN", scheme=scheme)

    def test_prefetch_scheme_rejected(self):
        """PFH installs lines without counted demand misses, so the
        oracle bound does not cover it; the spec refuses it up front
        rather than letting a mix break the ``bound >= measured``
        invariant at report time."""
        with pytest.raises(ValueError, match="prefetching"):
            TenantSpec(workload="NN", scheme="PFH+TOT")

    @pytest.mark.parametrize("bad", [
        {"scale": 0.0}, {"scale": -1.0}, {"seed": -1},
        {"active_agents": 0},
    ])
    def test_bad_numbers_rejected(self, bad):
        with pytest.raises(ValueError):
            TenantSpec(workload="NN", **bad)

    def test_descriptor_round_trips(self):
        spec = TenantSpec(workload="HS", scheme="CLU+TOT", scale=0.5,
                          seed=3, active_agents=4, bypass=True)
        assert TenantSpec.from_descriptor(spec.descriptor()) == spec

    def test_from_descriptor_accepts_abbreviation(self):
        assert TenantSpec.from_descriptor("NN") == TenantSpec(workload="NN")

    def test_from_descriptor_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown tenant fields"):
            TenantSpec.from_descriptor({"workload": "NN", "gpu": "K40"})

    def test_from_descriptor_needs_workload(self):
        with pytest.raises(ValueError, match="workload"):
            TenantSpec.from_descriptor({"scheme": "CLU"})


class TestTenantMix:
    def test_of_mixes_descriptor_forms(self):
        mix = TenantMix.of("NN", {"workload": "HS", "scheme": "CLU"},
                           TenantSpec(workload="MM"), policy="sm-split")
        assert [t.workload for t in mix.tenants] == ["NN", "HS", "MM"]
        assert mix.policy == "sm-split"

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            TenantMix(tenants=())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            TenantMix.of("NN", policy="time-sliced")

    def test_policies_registry(self):
        assert POLICIES == ("shared", "sm-split", "cluster-isolated")

    def test_label(self):
        mix = TenantMix.of("NN", "HS", policy="cluster-isolated")
        assert mix.label() == "NN+HS/cluster-isolated"

    def test_descriptor_is_json_shaped(self):
        import json
        mix = TenantMix.of("NN", "HS")
        document = mix.descriptor()
        assert json.loads(json.dumps(document)) == document
