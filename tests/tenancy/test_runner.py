"""The co-tenant runner: solo equivalence, accounting, policies.

The load-bearing guarantees, in the order the ISSUE states them:

* a one-tenant mix is *bit-identical* to the single-kernel simulator
  (golden fingerprints therefore never see the co-dispatch loop);
* per-tenant cache accounting is exact under address-space tagging;
* every policy keeps the oracle-bound invariant
  (``bound_hit_rate >= measured`` per tenant, any mix);
* the fast path and the reference cache models agree on co-tenant
  runs the same way they do solo.
"""

import pytest

from repro import api
from repro.gpu.config import PLATFORMS
from repro.gpu.metrics import canonical_metrics
from repro.tenancy import POLICIES, TenantMix, run_mix
from repro.tenancy.runner import TENANT_STRIDE, tenant_kernel
from repro.workloads.registry import workload

GPU = "GTX980"
SCALE = 0.25

pytestmark = pytest.mark.filterwarnings("error")


@pytest.fixture(scope="module")
def duo_report():
    """One shared-policy two-tenant measurement, reused across tests."""
    mix = TenantMix.of({"workload": "NN", "scheme": "CLU", "scale": SCALE},
                       {"workload": "HS", "scheme": "CLU", "scale": SCALE})
    return run_mix(mix, GPU, seed=0, warmups=1)


class TestSoloEquivalence:
    def test_single_tenant_mix_is_bit_identical_to_simulate(self):
        mix = TenantMix.of({"workload": "NN", "scheme": "CLU",
                            "scale": SCALE})
        report = run_mix(mix, GPU, seed=0, warmups=1)
        solo = api.simulate("NN", GPU, scheme="CLU", scale=SCALE,
                            seed=0, warmups=1)
        assert canonical_metrics(report.metrics[0]) \
            == canonical_metrics(solo)
        tenant = report.tenants[0]
        assert tenant.slowdown == 1.0
        assert tenant.l1_hit_delta == 0.0
        assert report.unfairness == 1.0

    def test_solo_canonical_form_has_no_tenancy_section(self):
        """Solo metrics stay golden-fingerprint compatible: the
        tenancy block only appears on genuinely multi-tenant runs."""
        mix = TenantMix.of({"workload": "NN", "scale": SCALE})
        report = run_mix(mix, GPU, warmups=0)
        assert "tenants" not in canonical_metrics(report.metrics[0])


class TestTenantKernel:
    def test_tenant_zero_is_the_original_instance(self):
        kernel = workload("NN").kernel(scale=SCALE,
                                       config=PLATFORMS[GPU])
        assert tenant_kernel(kernel, 0) is kernel

    def test_shift_moves_tags_not_structure(self):
        kernel = workload("NN").kernel(scale=SCALE,
                                       config=PLATFORMS[GPU])
        shifted = tenant_kernel(kernel, 2)
        original = kernel.cta_trace(0)
        moved = shifted.cta_trace(0)
        assert len(moved) == len(original)
        for a, b in zip(original, moved):
            assert b.base - a.base == 2 * TENANT_STRIDE
            assert (a.stride, a.lanes, a.size, a.is_write, a.is_stream) \
                == (b.stride, b.lanes, b.size, b.is_write, b.is_stream)


class TestAccounting:
    def test_per_tenant_metrics_are_attributed(self, duo_report):
        report = duo_report
        assert len(report.tenants) == 2
        for index, (tenant, metrics) in enumerate(
                zip(report.tenants, report.metrics)):
            assert tenant.index == index
            assert metrics.tenant_index == index
            assert metrics.tenants == 2
            assert metrics.tenancy_policy == "shared"
            assert metrics.ctas_executed > 0
            assert metrics.l1.accesses > 0
            assert "tenants" in canonical_metrics(metrics)

    def test_every_tenant_ran_its_whole_grid(self, duo_report):
        config = PLATFORMS[GPU]
        for tenant, metrics in zip(duo_report.tenants,
                                   duo_report.metrics):
            kernel = workload(tenant.workload).kernel(scale=SCALE,
                                                      config=config)
            assert metrics.ctas_executed == kernel.n_ctas

    def test_interference_shows_up_as_slowdown(self, duo_report):
        # Two tenants on a shared GPU can't both run at solo speed.
        assert any(t.slowdown > 1.0 for t in duo_report.tenants)
        assert duo_report.makespan_cycles == max(
            m.cycles for m in duo_report.metrics)
        slowdowns = [t.slowdown for t in duo_report.tenants]
        assert duo_report.unfairness == pytest.approx(
            max(slowdowns) / min(slowdowns))
        assert duo_report.unfairness >= 1.0

    def test_report_renders_the_oracle_column(self, duo_report):
        text = duo_report.render()
        assert "oracle" in text
        assert "unfairness=" in text


class TestPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_bound_invariant_holds(self, policy):
        mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                           {"workload": "SRD", "scale": SCALE},
                           policy=policy)
        report = run_mix(mix, GPU, warmups=1)
        assert report.violations() == []
        for tenant in report.tenants:
            assert tenant.bound_headroom >= -1e-9

    def test_split_policies_partition_the_sms(self):
        config = PLATFORMS[GPU]
        for policy in ("sm-split", "cluster-isolated"):
            mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                               {"workload": "HS", "scale": SCALE},
                               policy=policy)
            report = run_mix(mix, GPU, warmups=0)
            counts = [t.sm_count for t in report.tenants]
            assert sum(counts) == config.num_sms
            for metrics, tenant in zip(report.metrics, report.tenants):
                busy = [sm for sm, n in enumerate(metrics.ctas_per_sm)
                        if n]
                assert len(busy) <= tenant.sm_count
            # Disjoint SM footprints: no SM serves both tenants.
            footprints = [
                {sm for sm, n in enumerate(m.ctas_per_sm) if n}
                for m in report.metrics
            ]
            assert not footprints[0] & footprints[1]

    def test_shared_policy_uses_every_sm_for_every_tenant(self):
        config = PLATFORMS[GPU]
        mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                           {"workload": "HS", "scale": SCALE})
        report = run_mix(mix, GPU, warmups=0)
        assert all(t.sm_count == config.num_sms
                   for t in report.tenants)

    def test_too_many_tenants_for_a_split_rejected(self):
        config = PLATFORMS[GPU]
        tenants = [{"workload": "NN", "scale": 0.1}
                   for _ in range(config.num_sms + 1)]
        mix = TenantMix.of(*tenants, policy="sm-split")
        with pytest.raises(ValueError, match="at least one SM"):
            run_mix(mix, GPU, warmups=0)


class TestDeterminismAndBackends:
    def test_same_seed_same_report(self):
        mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                           {"workload": "HS", "scale": SCALE})
        first = run_mix(mix, GPU, seed=3, warmups=0)
        second = run_mix(mix, GPU, seed=3, warmups=0)
        assert [canonical_metrics(m) for m in first.metrics] \
            == [canonical_metrics(m) for m in second.metrics]

    def test_fast_and_reference_models_agree(self):
        """The differential guarantee extends to co-tenant runs: the
        flat-tag fast caches and the dict-based reference models see
        the same tagged address stream, so metrics match bit for bit."""
        mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                           {"workload": "HS", "scheme": "CLU",
                            "scale": SCALE})
        fast = run_mix(mix, GPU, warmups=1, fast=True)
        ref = run_mix(mix, GPU, warmups=1, fast=False)
        assert [canonical_metrics(m) for m in fast.metrics] \
            == [canonical_metrics(m) for m in ref.metrics]

    def test_tracer_sees_both_tenants(self):
        from repro.obs.tracer import RecordingTracer
        tracer = RecordingTracer()
        mix = TenantMix.of({"workload": "NN", "scale": SCALE},
                           {"workload": "HS", "scale": SCALE})
        run_mix(mix, GPU, warmups=0, tracer=tracer)
        assert len(tracer.launches) == 2
        assert tracer.waves  # per-wave spans recorded


class TestValidation:
    def test_negative_warmups_rejected(self):
        mix = TenantMix.of({"workload": "NN", "scale": SCALE})
        with pytest.raises(ValueError, match="warmups"):
            run_mix(mix, GPU, warmups=-1)

    def test_unknown_platform_rejected(self):
        mix = TenantMix.of({"workload": "NN", "scale": SCALE})
        with pytest.raises(KeyError, match="unknown platform"):
            run_mix(mix, "GTX750TI", warmups=0)

    def test_gpu_type_rejected(self):
        mix = TenantMix.of({"workload": "NN", "scale": SCALE})
        with pytest.raises(TypeError, match="GpuConfig or platform"):
            run_mix(mix, 980, warmups=0)
