"""Shared fixtures: platforms and small synthetic kernels."""

from __future__ import annotations

import pytest

from repro.gpu.config import EVALUATION_PLATFORMS, GTX570, GTX980, GTX1080, TESLA_K40
from repro.kernels.access import read, write
from repro.kernels.kernel import AddressSpace, ArrayRef, Dim3, KernelSpec, LocalityCategory


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the golden fingerprint fixtures under "
             "tests/integration/goldens/ with freshly computed values "
             "(use after an intentional simulator behaviour change; "
             "commit the diff together with the change that caused it)")


@pytest.fixture(params=EVALUATION_PLATFORMS, ids=lambda g: g.name)
def any_gpu(request):
    """Parametrized over the paper's four evaluation platforms."""
    return request.param


@pytest.fixture
def fermi():
    return GTX570


@pytest.fixture
def kepler():
    return TESLA_K40


@pytest.fixture
def maxwell():
    return GTX980


@pytest.fixture
def pascal():
    return GTX1080


def make_shared_table_kernel(n_ctas: int = 60, table_rows: int = 8,
                             stream_rows_per_cta: int = 2,
                             warps: int = 4) -> KernelSpec:
    """A minimal algorithm-related kernel: shared table + private stream."""
    space = AddressSpace()
    table = space.alloc("table", table_rows, 32)
    data = space.alloc("data", n_ctas * stream_rows_per_cta, 32)

    def trace(bx, by, bz):
        accesses = []
        for r in range(stream_rows_per_cta):
            accesses.append(read(data.addr(bx * stream_rows_per_cta + r, 0),
                                 4, 32, 4, stream=True))
        for r in range(table_rows):
            accesses.append(read(table.addr(r, 0), 4, 32, 4))
        return accesses

    return KernelSpec(
        name="shared-table", grid=Dim3(n_ctas), block=Dim3(32 * warps),
        trace=trace, regs_per_thread=16,
        category=LocalityCategory.ALGORITHM,
        array_refs=(
            ArrayRef("data", (("bx", "tx"),)),
            ArrayRef("table", (("j",),), weight=2.0),
            ArrayRef("out", (("bx", "tx"),), is_write=True),
        ),
    )


def make_row_band_kernel(grid_x: int = 8, grid_y: int = 6,
                         band_rows: int = 4) -> KernelSpec:
    """2D kernel where CTAs of one grid row share a row band (MM-like)."""
    space = AddressSpace()
    band = space.alloc("band", grid_y * band_rows, 32)
    priv = space.alloc("priv", grid_x * grid_y, 32)

    def trace(bx, by, bz):
        accesses = [read(priv.addr(by * grid_x + bx, 0), 4, 32, 4,
                         stream=True)]
        for r in range(band_rows):
            accesses.append(read(band.addr(by * band_rows + r, 0), 4, 32, 4))
        return accesses

    return KernelSpec(
        name="row-band", grid=Dim3(grid_x, grid_y), block=Dim3(64),
        trace=trace, regs_per_thread=16,
        category=LocalityCategory.ALGORITHM,
        array_refs=(
            ArrayRef("band", (("by",), ("j",)), weight=2.0),
            ArrayRef("priv", (("by",), ("bx", "tx"))),
            ArrayRef("out", (("by",), ("bx", "tx")), is_write=True),
        ),
    )


def make_streaming_kernel(n_ctas: int = 64) -> KernelSpec:
    """Pure streaming kernel: every CTA touches private data once."""
    space = AddressSpace()
    src = space.alloc("src", n_ctas * 2, 32)
    dst = space.alloc("dst", n_ctas, 32)

    def trace(bx, by, bz):
        return [
            read(src.addr(bx * 2, 0), 4, 32, 4, stream=True),
            read(src.addr(bx * 2 + 1, 0), 4, 32, 4, stream=True),
            write(dst.addr(bx, 0), 4, 32, 4, stream=True),
        ]

    return KernelSpec(
        name="stream", grid=Dim3(n_ctas), block=Dim3(64), trace=trace,
        regs_per_thread=16, category=LocalityCategory.STREAMING,
        array_refs=(
            ArrayRef("src", (("bx", "tx"),)),
            ArrayRef("dst", (("bx", "tx"),), is_write=True),
        ),
    )


@pytest.fixture
def shared_table_kernel():
    return make_shared_table_kernel()


@pytest.fixture
def row_band_kernel():
    return make_row_band_kernel()


@pytest.fixture
def streaming_kernel():
    return make_streaming_kernel()
