"""Cache model tests: LRU/random replacement, write policies, sectors,
in-flight fills, launch-boundary semantics — plus hypothesis properties.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import (
    CacheStats, SectoredCache, SetAssociativeCache, make_l1, make_l2)
from repro.gpu.config import GTX570, GTX980, WritePolicy


def small_cache(**kw):
    kw.setdefault("size", 1024)
    kw.setdefault("line_size", 32)
    kw.setdefault("assoc", 4)
    return SetAssociativeCache(**kw)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, ready = cache.access(0, now=0.0, miss_fill_latency=100.0)
        assert not hit
        assert ready == 100.0
        hit, ready = cache.access(0, now=200.0, miss_fill_latency=100.0)
        assert hit
        assert ready == 200.0

    def test_same_line_different_words(self):
        cache = small_cache()
        cache.access(0, 0.0, 10.0)
        hit, _ = cache.access(31, 50.0, 10.0)
        assert hit  # same 32B line

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.access(0, 0.0, 10.0)
        hit, _ = cache.access(32, 50.0, 10.0)
        assert not hit

    def test_reserved_hit_waits_for_fill(self):
        # Section 3.1-(1): "hit reserved" — hit but data on the fly
        cache = small_cache()
        cache.access(0, 0.0, 500.0)
        hit, ready = cache.access(0, 100.0, 500.0)
        assert hit
        assert ready == 500.0
        assert cache.stats.reserved_hits == 1

    def test_stats_counting(self):
        cache = small_cache()
        cache.access(0, 0.0, 1.0)
        cache.access(0, 10.0, 1.0)
        cache.access(64, 10.0, 1.0)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_empty_hit_rate_is_zero(self):
        assert small_cache().stats.hit_rate == 0.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size=1000, line_size=32, assoc=4)


class TestLruReplacement:
    def test_lru_victim_is_oldest(self):
        # 1024B/32B/4-way => 8 sets; same set = addresses 256B apart
        cache = small_cache()
        addrs = [0, 256, 512, 768]  # fill one set
        for a in addrs:
            cache.access(a, 0.0, 1.0)
        cache.access(1024, 10.0, 1.0)  # evicts LRU = addr 0
        assert not cache.contains(0)
        assert cache.contains(256)
        assert cache.contains(1024)

    def test_touch_refreshes_lru(self):
        cache = small_cache()
        for a in (0, 256, 512, 768):
            cache.access(a, 0.0, 1.0)
        cache.access(0, 5.0, 1.0)      # refresh line 0
        cache.access(1024, 10.0, 1.0)  # now evicts 256
        assert cache.contains(0)
        assert not cache.contains(256)


class TestWritePolicies:
    def test_write_evict_invalidates(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_EVICT)
        cache.access(0, 0.0, 1.0)
        assert cache.contains(0)
        cache.access(0, 5.0, 1.0, is_write=True)
        assert not cache.contains(0)
        assert cache.stats.write_evictions == 1

    def test_write_evict_counts_miss(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_EVICT)
        cache.access(0, 0.0, 1.0, is_write=True)
        assert cache.stats.misses == 1
        assert not cache.contains(0)

    def test_write_back_allocate_installs(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        cache.access(0, 0.0, 1.0, is_write=True)
        assert cache.contains(0)
        hit, _ = cache.access(0, 5.0, 1.0)
        assert hit


class TestMaintenance:
    def test_flush_drops_lines_keeps_stats(self):
        cache = small_cache()
        cache.access(0, 0.0, 1.0)
        cache.flush()
        assert not cache.contains(0)
        assert cache.stats.accesses == 1

    def test_reset_stats_keeps_lines(self):
        cache = small_cache()
        cache.access(0, 0.0, 1.0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.contains(0)

    def test_settle_completes_pending_fills(self):
        cache = small_cache()
        cache.access(0, 0.0, 10_000.0)
        cache.settle()
        hit, ready = cache.access(0, 1.0, 10_000.0)
        assert hit
        assert ready == 1.0  # no longer waiting on a stale fill

    def test_install_without_access_stats(self):
        cache = small_cache()
        cache.install(0, ready_at=50.0)
        assert cache.stats.accesses == 0
        hit, ready = cache.access(0, 10.0, 1.0)
        assert hit
        assert ready == 50.0


class TestRandomReplacement:
    def test_random_replacement_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            cache = small_cache(random_replacement=True)
            for a in range(0, 4096, 32):
                cache.access(a, 0.0, 1.0)
            results.append(cache.stats.hits)
        assert results[0] == results[1]

    def test_random_replacement_avoids_cyclic_cliff(self):
        """Cyclic sweep slightly over capacity: LRU gets ~0 hits on the
        second pass, random replacement retains a healthy fraction."""
        size, line = 1024, 32
        n_lines = (size // line) + 8

        def sweep_twice(cache):
            for _ in range(2):
                for i in range(n_lines):
                    cache.access(i * line, 0.0, 1.0)
            return cache.stats.hits

        lru_hits = sweep_twice(small_cache())
        rnd_hits = sweep_twice(small_cache(random_replacement=True))
        assert lru_hits == 0
        assert rnd_hits > n_lines // 4


class TestSectoredCache:
    def test_sectors_are_private(self):
        # The Maxwell/Pascal L1/Tex sector split blocks cross-sector
        # reuse (Section 5.2 observation 6)
        cache = SectoredCache(2048, 32, 4, sectors=2)
        cache.access(0, 0.0, 1.0, sector=0)
        hit, _ = cache.access(0, 10.0, 1.0, sector=1)
        assert not hit
        hit, _ = cache.access(0, 20.0, 1.0, sector=0)
        assert hit

    def test_aggregate_stats(self):
        cache = SectoredCache(2048, 32, 4, sectors=2)
        cache.access(0, 0.0, 1.0, sector=0)
        cache.access(0, 0.0, 1.0, sector=1)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 2

    def test_sector_wraps(self):
        cache = SectoredCache(2048, 32, 4, sectors=2)
        cache.access(0, 0.0, 1.0, sector=0)
        hit, _ = cache.access(0, 1.0, 1.0, sector=2)  # 2 % 2 == 0
        assert hit

    def test_invalid_sector_count(self):
        with pytest.raises(ValueError):
            SectoredCache(2048, 32, 4, sectors=0)

    def test_indivisible_size(self):
        with pytest.raises(ValueError):
            SectoredCache(2048 + 32, 32, 4, sectors=2)

    def test_flush_and_settle_cover_all_sectors(self):
        cache = SectoredCache(2048, 32, 4, sectors=2)
        cache.access(0, 0.0, 999.0, sector=0)
        cache.access(64, 0.0, 999.0, sector=1)
        cache.settle()
        assert cache.access(0, 1.0, 1.0, sector=0) == (True, 1.0)
        cache.flush()
        assert not cache.contains(0, sector=0)
        assert not cache.contains(64, sector=1)


class TestFactories:
    def test_make_l1_fermi_unsectored(self):
        l1 = make_l1(GTX570)
        assert l1.sectors == 1
        assert l1.line_size == 128

    def test_make_l1_maxwell_sectored(self):
        l1 = make_l1(GTX980)
        assert l1.sectors == 2
        assert l1.line_size == 32

    def test_make_l2_uses_random_replacement(self):
        l2 = make_l2(GTX980)
        assert l2._random_replacement
        assert l2.write_policy is WritePolicy.WRITE_BACK_ALLOCATE


class TestCacheStatsMerge:
    def test_merge_accumulates(self):
        a = CacheStats(accesses=10, hits=4, misses=6, reserved_hits=1,
                       write_evictions=2)
        b = CacheStats(accesses=5, hits=5, misses=0)
        a.merge(b)
        assert a.accesses == 15
        assert a.hits == 9
        assert a.misses == 6
        assert a.reserved_hits == 1
        assert a.write_evictions == 2


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=200))
def test_property_hits_plus_misses_equals_accesses(addrs):
    cache = small_cache()
    for a in addrs:
        cache.access(a, 0.0, 1.0)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(addrs)


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16),
                      min_size=1, max_size=200),
       random_repl=st.booleans())
def test_property_set_never_exceeds_associativity(addrs, random_repl):
    cache = small_cache(random_replacement=random_repl)
    for a in addrs:
        cache.access(a, 0.0, 1.0)
    for cset in cache._sets:
        assert len(cset) <= cache.assoc


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 14),
                      min_size=2, max_size=100))
def test_property_immediate_rereference_always_hits(addrs):
    cache = small_cache()
    for a in addrs:
        cache.access(a, 0.0, 1.0)
        hit, _ = cache.access(a, 0.0, 1.0)
        assert hit


@settings(max_examples=40, deadline=None)
@given(working=st.integers(min_value=1, max_value=32))
def test_property_working_set_within_capacity_all_hits_second_pass(working):
    """Any working set that fits entirely never misses on re-walk (LRU)."""
    cache = small_cache()  # 32 lines total, 8 sets x 4 ways
    lines = [i * 32 for i in range(working)]
    for a in lines:
        cache.access(a, 0.0, 1.0)
    for a in lines:
        hit, _ = cache.access(a, 1.0, 1.0)
        assert hit
