"""Chiplet topology properties: trivial-package bit-identity, placement
bijections, page-ownership consistency and local-traffic accounting.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.gpu.config import GTX980, TESLA_K40, platform
from repro.gpu.metrics import canonical_metrics
from repro.gpu.plan import ExecutionPlan
from repro.gpu.simulator import simulate
from repro.gpu.topology import (
    ChipletTopology,
    PLACEMENTS,
    TOPOLOGIES,
    _greedy_assignment,
    chiplet_variant,
    place_tasks,
    resolve_placement,
)
from repro.kernels.access import read
from repro.kernels.kernel import AddressSpace, Dim3, KernelSpec
from repro.workloads.registry import workload


class TestTopologyBasics:
    def test_chiplet_variant_one_is_the_flat_die(self):
        assert chiplet_variant(GTX980, 1) is GTX980

    def test_chiplet_variant_names_capture_the_count(self):
        assert chiplet_variant(GTX980, 2).name == "GTX980x2"
        assert platform("GTX980x4").topology.chiplets == 4

    def test_one_chiplet_topology_is_trivial(self):
        assert ChipletTopology(chiplets=1).is_trivial
        assert not ChipletTopology(chiplets=2).is_trivial

    def test_sms_partition_into_contiguous_groups(self):
        topo = ChipletTopology(chiplets=4)
        groups = topo.sms_of_chiplet(16)
        assert [len(g) for g in groups] == [4, 4, 4, 4]
        flat = [sm for group in groups for sm in group]
        assert flat == list(range(16))
        for sm in range(16):
            assert topo.chiplet_of_sm(sm, 16) == sm // 4

    def test_resolve_placement(self):
        assert resolve_placement(None) == "oblivious"
        assert resolve_placement("local-first") == "local-first"
        with pytest.raises(ValueError):
            resolve_placement("teleport")

    def test_registries(self):
        assert TOPOLOGIES["single-die"] is None
        assert TOPOLOGIES["4-chiplet"].chiplets == 4
        assert set(PLACEMENTS) == {"oblivious", "local-first", "balanced"}

    @given(line=st.integers(0, 1 << 24),
           line_bytes=st.sampled_from((32, 64, 128)),
           chiplets=st.sampled_from((2, 3, 4, 8)))
    @settings(max_examples=50, deadline=None)
    def test_line_owner_consistent_with_addr_owner(self, line, line_bytes,
                                                   chiplets):
        topo = ChipletTopology(chiplets=chiplets)
        assert topo.owner_of_line(line, line_bytes) == \
            topo.owner_of_addr(line * line_bytes)


class TestTrivialPackageBitIdentity:
    """A 1-chiplet package must be indistinguishable from the flat die
    — the property that keeps every golden fingerprint valid."""

    def _flat_and_trivial(self, abbr, scheme, backend):
        trivial = dataclasses.replace(GTX980,
                                      topology=ChipletTopology(chiplets=1))
        out = []
        for config in (GTX980, trivial):
            kernel = workload(abbr).kernel(scale=0.3, config=config)
            plan = None
            if scheme != "BSL":
                plan = api.cluster(kernel, scheme, gpu=config)
            out.append(simulate(config, kernel, plan, seed=0, warmups=1,
                                backend=backend))
        return out

    @pytest.mark.parametrize("backend", ["serial", "batched"])
    @pytest.mark.parametrize("abbr,scheme",
                             [("NN", "CLU"), ("HST", "CLU"), ("ATX", "BSL")])
    def test_bit_identical_on_both_backends(self, abbr, scheme, backend):
        flat, trivial = self._flat_and_trivial(abbr, scheme, backend)
        assert canonical_metrics(flat) == canonical_metrics(trivial)

    def test_flat_metrics_have_no_numa_section(self):
        metrics = api.simulate("NN", GTX980, scale=0.3)
        assert metrics.chiplets == 1
        assert metrics.dram_remote_transactions == 0
        assert metrics.remote_traffic_fraction == 0.0
        assert "numa" not in canonical_metrics(metrics)


class TestPlacementBijection:
    """Every placement policy is a permutation of the cluster binding:
    the same task lists, each appearing exactly once."""

    @pytest.fixture(scope="class")
    def placed_inputs(self):
        config = platform("GTX980x4").with_scaled_l2(16)
        kernel = workload("HST").kernel(scale=0.3, config=config)
        plan = api.cluster(kernel, "CLU", gpu=config)
        return config, kernel, plan.sm_tasks

    @pytest.mark.parametrize("policy", sorted(PLACEMENTS))
    def test_policy_is_a_bijection(self, placed_inputs, policy):
        config, kernel, sm_tasks = placed_inputs
        placed = place_tasks(sm_tasks, policy, config.topology, config,
                             kernel)
        assert len(placed) == len(sm_tasks)
        original = sorted(tuple(tasks) for tasks in sm_tasks)
        permuted = sorted(tuple(tasks) for tasks in placed)
        assert permuted == original

    def test_trivial_topology_never_moves_anything(self, placed_inputs):
        config, kernel, sm_tasks = placed_inputs
        for policy in PLACEMENTS:
            placed = place_tasks(sm_tasks, policy,
                                 ChipletTopology(chiplets=1), config, kernel)
            assert placed == list(sm_tasks)

    @given(chiplets=st.sampled_from((2, 4)),
           clusters_per_chiplet=st.integers(1, 6),
           balance=st.booleans(),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_greedy_assignment_fills_every_slot_exactly(
            self, chiplets, clusters_per_chiplet, balance, data):
        """The greedy bind is slot-exact: chiplet k receives exactly
        ``slots[k]`` clusters, whatever the affinities — the balanced
        cluster-count property every policy inherits."""
        slots = [clusters_per_chiplet] * chiplets
        n = sum(slots)
        affinities = [
            {owner: data.draw(st.integers(0, 100),
                              label=f"aff[{c}][{owner}]")
             for owner in range(chiplets)}
            for c in range(n)]
        assignment = _greedy_assignment(affinities, slots, balance=balance)
        assert len(assignment) == n
        counts = [assignment.count(k) for k in range(chiplets)]
        assert counts == slots


class TestLocalTrafficAccounting:
    """DRAM traffic confined to its accessor's own chiplet must charge
    zero remote transactions and zero hop latency."""

    def _local_only_setup(self):
        """All tasks on chiplet 0, all pages in chiplet-0 blocks.

        The allocator's base (0x1000_0000) is 256 KiB-aligned, so a
        footprint under one ownership block (256 KiB) sits entirely in
        chiplet-0-owned pages; binding every task to SMs 0..3 (chiplet
        0 of the 4-chiplet Maxwell) makes every DRAM fill local.
        """
        config = platform("GTX980x4")
        topo = config.topology
        rows = 512  # 512 * 32B = 16 KiB << one 256 KiB block
        space = AddressSpace()
        array = space.alloc("local", rows, 8)

        def trace(bx, by, bz):
            return [read(array.addr((bx * 37 + k * 13) % rows, 0), 4, 32, 4)
                    for k in range(16)]

        kernel = KernelSpec(name="local-only", grid=Dim3(16), block=Dim3(64),
                            trace=trace, regs_per_thread=16)
        home_sms = topo.sms_of_chiplet(config.num_sms)[0]
        sm_tasks = [[] for _ in range(config.num_sms)]
        for cta in range(kernel.grid.count):
            sm_tasks[home_sms[cta % len(home_sms)]].append(cta)
        plan = ExecutionPlan(scheme="CLU", mode="placed", sm_tasks=sm_tasks,
                             active_agents=1)
        return config, kernel, plan

    def test_all_local_pages_mean_zero_remote_traffic(self):
        config, kernel, plan = self._local_only_setup()
        metrics = simulate(config, kernel, plan, seed=0, warmups=0)
        assert metrics.chiplets == 4
        assert metrics.dram_transactions > 0
        assert metrics.dram_remote_transactions == 0
        assert metrics.remote_traffic_fraction == 0.0
        assert metrics.dram_local_transactions == metrics.dram_transactions

    def test_local_only_run_matches_flat_timing(self):
        """With zero remote fills the hop cost never engages: the same
        plan on the topology-free die is bit-identical in cycles."""
        config, kernel, plan = self._local_only_setup()
        chipleted = simulate(config, kernel, plan, seed=0, warmups=0)
        flat = simulate(GTX980, kernel, plan, seed=0, warmups=0)
        assert chipleted.cycles == flat.cycles
        assert chipleted.dram_transactions == flat.dram_transactions


class TestBackendAgreement:
    def test_serial_and_batched_agree_on_chiplet_platform(self):
        config = platform("GTX980x4").with_scaled_l2(16)
        kernel = workload("HST").kernel(scale=0.3, config=config)
        plan = api.cluster(kernel, "CLU", gpu=config,
                           placement="local-first")
        serial = simulate(config, kernel, plan, seed=0, warmups=1,
                          backend="serial")
        batched = simulate(config, kernel, plan, seed=0, warmups=1,
                           backend="batched")
        assert canonical_metrics(serial) == canonical_metrics(batched)
        assert serial.dram_remote_transactions > 0


class TestPlacementEndToEnd:
    def test_local_first_never_loses_static_locality(self):
        """The demonstration pair: on the 4-chiplet Maxwell in the
        shrunken-L2 regime, local-first strictly reduces the remote
        traffic the oblivious binding routes across the interposer."""
        config = platform("GTX980x4").with_scaled_l2(16)
        for abbr in ("HST", "BKP"):
            oblivious = api.simulate(abbr, config, scheme="CLU", scale=0.3)
            local = api.simulate(abbr, config, scheme="CLU", scale=0.3,
                                 placement="local-first")
            assert local.dram_remote_transactions <= \
                oblivious.dram_remote_transactions, abbr
            assert local.remote_traffic_fraction < \
                oblivious.remote_traffic_fraction, abbr
