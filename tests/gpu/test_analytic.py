"""Unit tests for the rung-0 analytic locality model."""

import dataclasses
import math

import pytest

from repro.gpu.analytic import (AnalyticEstimate, estimate, fit_power_law,
                                load_calibration, reload_calibration)
from repro.gpu.config import GTX980, TESLA_K40
from repro.gpu.plan import baseline_plan
from repro.workloads.registry import workload

SCALE = 0.3


def kernel_for(gpu, abbr="NN"):
    return workload(abbr).kernel(scale=SCALE, config=gpu)


def clu_plan(gpu, kernel):
    from repro.api import cluster
    return cluster(kernel, "CLU", gpu=gpu)


class TestEstimateShape:
    def test_returns_frozen_estimate_record(self):
        kernel = kernel_for(TESLA_K40)
        result = estimate(TESLA_K40, kernel, None)
        assert isinstance(result, AnalyticEstimate)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.cycles = 0.0

    def test_fields_are_physical(self):
        kernel = kernel_for(TESLA_K40)
        result = estimate(TESLA_K40, kernel, None)
        assert result.gpu_name == TESLA_K40.name
        assert result.kernel_name == kernel.name
        assert result.scheme == "BSL"
        assert result.fidelity == "analytic"
        assert result.cycles > 0
        assert result.raw_cycles > 0
        assert 0.0 <= result.l1_hit_rate <= 1.0
        assert 0.0 <= result.l2_hit_rate <= 1.0
        assert result.dram_transactions <= result.l2_transactions
        assert result.warp_accesses > 0
        assert 0 < result.ctas_sampled <= result.ctas_total
        assert 0.0 < result.sample_fraction <= 1.0

    def test_duck_types_as_metrics_for_observability(self):
        # The obs walk keys on cycles + l1_hit_rate + sm_cycles; the
        # tuner objectives key on cycles/l2/dram.  Both shapes must hold
        # so estimates flow through the same sinks as KernelMetrics.
        result = estimate(TESLA_K40, kernel_for(TESLA_K40), None)
        assert result.sm_cycles == ()
        for field in ("cycles", "l1_hit_rate", "l2_transactions",
                      "dram_transactions"):
            assert hasattr(result, field)

    def test_none_plan_means_baseline(self):
        kernel = kernel_for(TESLA_K40)
        a = estimate(TESLA_K40, kernel, None)
        b = estimate(TESLA_K40, kernel, baseline_plan())
        assert a.cycles == b.cycles
        assert a.scheme == b.scheme == "BSL"


class TestDeterminism:
    def test_repeated_estimates_are_identical(self):
        kernel = kernel_for(TESLA_K40)
        plan = clu_plan(TESLA_K40, kernel)
        a = estimate(TESLA_K40, kernel, plan)
        b = estimate(TESLA_K40, kernel, plan)
        assert a == b

    def test_architectures_differ(self):
        a = estimate(TESLA_K40, kernel_for(TESLA_K40), None)
        b = estimate(GTX980, kernel_for(GTX980), None)
        assert a.cycles != b.cycles


class TestClusteringMovesTheModel:
    def test_clustering_changes_hit_rates(self):
        kernel = kernel_for(TESLA_K40)
        base = estimate(TESLA_K40, kernel, None)
        clu = estimate(TESLA_K40, kernel, clu_plan(TESLA_K40, kernel))
        assert clu.scheme != "BSL"
        # The whole point of the paper: clustering changes locality.
        assert (clu.l1_hit_rate, clu.l2_hit_rate, clu.cycles) \
            != (base.l1_hit_rate, base.l2_hit_rate, base.cycles)

    def test_warmups_warm_the_l2(self):
        kernel = kernel_for(TESLA_K40)
        cold = estimate(TESLA_K40, kernel, None, warmups=0)
        warm = estimate(TESLA_K40, kernel, None, warmups=1)
        assert warm.dram_transactions <= cold.dram_transactions


class TestCalibration:
    def test_shipped_calibration_covers_every_architecture(self):
        coeffs = load_calibration()
        for arch in ("Fermi", "Kepler", "Maxwell", "Pascal"):
            assert arch in coeffs
            assert coeffs[arch]["a"] > 0

    def test_calibrated_flag_and_power_law(self):
        kernel = kernel_for(TESLA_K40)
        raw = estimate(TESLA_K40, kernel, None, calibrated=False)
        cal = estimate(TESLA_K40, kernel, None, calibrated=True)
        assert raw.calibrated is False
        assert raw.cycles == raw.raw_cycles
        assert cal.calibrated is True
        # class-level coefficients take precedence over the
        # architecture-level fit when the kernel's class has one
        coeffs = load_calibration()[TESLA_K40.architecture.value]
        fit = coeffs.get("classes", {}).get(kernel.category.value, coeffs)
        expected = math.exp(fit["b"]) * raw.raw_cycles ** fit["a"]
        assert cal.cycles == pytest.approx(expected)

    def test_calibration_is_ranking_invariant(self):
        # cycles = exp(b) * raw**a with a > 0 is monotone, so the
        # calibrated ordering must match the raw ordering.
        kernel = kernel_for(TESLA_K40)
        plans = [None, clu_plan(TESLA_K40, kernel)]
        raws = [estimate(TESLA_K40, kernel, p, calibrated=False).cycles
                for p in plans]
        cals = [estimate(TESLA_K40, kernel, p, calibrated=True).cycles
                for p in plans]
        assert sorted(range(2), key=raws.__getitem__) \
            == sorted(range(2), key=cals.__getitem__)

    def test_missing_calibration_file_yields_empty(self, tmp_path):
        assert load_calibration(str(tmp_path / "absent.json")) == {}

    def test_reload_roundtrip(self):
        before = load_calibration()
        assert reload_calibration() == before


class TestFitPowerLaw:
    def test_recovers_exact_power_law(self):
        raws = [100.0, 1000.0, 10000.0]
        sims = [2.0 * r ** 0.9 for r in raws]
        fit = fit_power_law(raws, sims)
        assert fit["a"] == pytest.approx(0.9, abs=1e-5)
        assert math.exp(fit["b"]) == pytest.approx(2.0, rel=1e-4)
        assert fit["points"] == 3
        assert fit["log_rmse"] == pytest.approx(0.0, abs=1e-3)

    def test_refuses_degenerate_inputs(self):
        assert fit_power_law([100.0], [200.0]) is None
        assert fit_power_law([100.0, 100.0], [200.0, 300.0]) is None
        # A negative slope (anti-correlated) is refused too.
        assert fit_power_law([1.0, 10.0, 100.0],
                             [100.0, 10.0, 1.0]) is None
