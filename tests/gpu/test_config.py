"""Platform configuration tests: the Table 1 facts the paper relies on."""

import dataclasses

import pytest

from repro.gpu.config import (
    Architecture, BY_ARCHITECTURE, EVALUATION_PLATFORMS, GTX570, GTX750TI,
    GTX980, GTX1080, KB, PLATFORMS, TESLA_K40, WritePolicy, platform)


class TestTable1Values:
    def test_four_evaluation_platforms_in_paper_order(self):
        names = [gpu.name for gpu in EVALUATION_PLATFORMS]
        assert names == ["GTX570", "Tesla K40", "GTX980", "GTX1080"]

    def test_architectures(self):
        archs = [gpu.architecture for gpu in EVALUATION_PLATFORMS]
        assert archs == [Architecture.FERMI, Architecture.KEPLER,
                         Architecture.MAXWELL, Architecture.PASCAL]

    def test_compute_capabilities(self):
        assert [g.compute_capability for g in EVALUATION_PLATFORMS] == \
            [2.0, 3.5, 5.2, 6.1]

    def test_sm_counts(self):
        assert [g.num_sms for g in EVALUATION_PLATFORMS] == [15, 15, 16, 20]

    def test_warp_slots(self):
        assert [g.warp_slots for g in EVALUATION_PLATFORMS] == [48, 64, 64, 64]

    def test_cta_slots(self):
        assert [g.cta_slots for g in EVALUATION_PLATFORMS] == [8, 16, 32, 32]

    def test_l1_line_sizes(self):
        assert GTX570.l1_line == 128
        assert TESLA_K40.l1_line == 128
        assert GTX980.l1_line == 32
        assert GTX1080.l1_line == 32

    def test_l2_line_is_32b_everywhere(self, any_gpu):
        assert any_gpu.l2_line == 32

    def test_l1_line_not_smaller_than_l2_line(self, any_gpu):
        # "the L1 cache line size is larger than or equal to that of
        # L2. This is important for later discussion." (Section 2)
        assert any_gpu.l1_line >= any_gpu.l2_line

    def test_l2_sizes(self):
        assert GTX570.l2_size == 1536 * KB
        assert TESLA_K40.l2_size == 1536 * KB
        assert GTX980.l2_size == 2048 * KB
        assert GTX1080.l2_size == 2048 * KB

    def test_shared_memory_sizes(self):
        assert [g.smem_per_sm // KB for g in EVALUATION_PLATFORMS] == \
            [48, 48, 96, 64]

    def test_register_files(self):
        assert GTX570.registers_per_sm == 32 * 1024
        assert all(g.registers_per_sm == 64 * 1024
                   for g in EVALUATION_PLATFORMS[1:])

    def test_fermi_kepler_configurable_l1(self):
        assert set(GTX570.l1_configurable_sizes) == {16 * KB, 48 * KB}
        assert set(TESLA_K40.l1_configurable_sizes) == \
            {16 * KB, 32 * KB, 48 * KB}

    def test_maxwell_pascal_fixed_l1(self):
        assert GTX980.l1_configurable_sizes == ()
        assert GTX980.l1_size == 48 * KB
        assert GTX1080.l1_size == 48 * KB


class TestDerivedProperties:
    def test_max_threads_per_sm(self):
        assert GTX570.max_threads_per_sm == 1536
        assert TESLA_K40.max_threads_per_sm == 2048

    def test_write_policies(self, any_gpu):
        assert any_gpu.l1_write_policy is WritePolicy.WRITE_EVICT
        assert any_gpu.l2_write_policy is WritePolicy.WRITE_BACK_ALLOCATE

    def test_l2_transactions_per_l1_miss(self):
        # "one 128B L1 miss is equivalent to four 32B L2 read
        # transactions" on Fermi/Kepler (Section 3.1)
        assert GTX570.l2_transactions_per_l1_miss == 4
        assert TESLA_K40.l2_transactions_per_l1_miss == 4
        assert GTX980.l2_transactions_per_l1_miss == 1
        assert GTX1080.l2_transactions_per_l1_miss == 1

    def test_unified_l1_tex_flag(self):
        assert not GTX570.has_unified_l1_tex
        assert not TESLA_K40.has_unified_l1_tex
        assert GTX980.has_unified_l1_tex
        assert GTX1080.has_unified_l1_tex

    def test_static_warp_slot_binding(self):
        # Fermi/Kepler bind CTAs to warp slots statically (Section 4.2.3)
        assert GTX570.static_warp_slot_binding
        assert TESLA_K40.static_warp_slot_binding
        assert not GTX980.static_warp_slot_binding
        assert not GTX1080.static_warp_slot_binding

    def test_sector_counts(self):
        assert GTX570.l1_sectors == 1
        assert TESLA_K40.l1_sectors == 1
        assert GTX980.l1_sectors == 2
        assert GTX1080.l1_sectors == 2

    def test_latencies_match_figure2_measurements(self):
        assert [g.l1_latency for g in EVALUATION_PLATFORMS] == \
            [125.0, 91.0, 131.0, 132.0]
        assert [g.l2_latency for g in EVALUATION_PLATFORMS] == \
            [374.0, 260.0, 254.0, 260.0]

    def test_dram_slower_than_l2_slower_than_l1(self, any_gpu):
        assert any_gpu.l1_latency < any_gpu.l2_latency < any_gpu.dram_latency


class TestConfigOperations:
    def test_with_l1_size_valid(self):
        big = GTX570.with_l1_size(48 * KB)
        assert big.l1_size == 48 * KB
        assert big.num_sms == GTX570.num_sms

    def test_with_l1_size_invalid(self):
        with pytest.raises(ValueError):
            GTX570.with_l1_size(32 * KB)

    def test_with_l1_size_fixed_platform(self):
        with pytest.raises(ValueError):
            GTX980.with_l1_size(16 * KB)
        assert GTX980.with_l1_size(48 * KB).l1_size == 48 * KB

    def test_with_scaled_l2(self):
        shrunk = GTX980.with_scaled_l2(8)
        assert shrunk.l2_size == 256 * KB
        assert shrunk.l1_size == GTX980.l1_size

    def test_with_scaled_l2_floor(self):
        tiny = GTX570.with_scaled_l2(10_000)
        assert tiny.l2_size == 32 * KB

    def test_with_scaled_l2_invalid(self):
        with pytest.raises(ValueError):
            GTX980.with_scaled_l2(0)

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX570.num_sms = 99


class TestPlatformLookup:
    def test_lookup_by_name(self):
        assert platform("GTX980") is GTX980
        assert platform("Tesla K40") is TESLA_K40

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            platform("GTX9000")

    def test_registry_contains_gtx750ti(self):
        assert PLATFORMS["GTX750Ti"] is GTX750TI
        assert GTX750TI.compute_capability == 5.0

    def test_by_architecture(self):
        assert BY_ARCHITECTURE[Architecture.PASCAL] is GTX1080
