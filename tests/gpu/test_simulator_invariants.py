"""Simulator conservation invariants, including hypothesis sweeps over
randomly shaped kernels.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import agent_plan
from repro.core.indexing import X_PARTITION
from repro.core.redirection import redirection_plan
from repro.gpu.config import GTX570, GTX980, TESLA_K40
from repro.gpu.simulator import GpuSimulator
from repro.kernels.access import read, write
from repro.kernels.kernel import AddressSpace, Dim3, KernelSpec


def random_kernel(n_ctas, accesses_per_cta, shared_rows, seed):
    """Deterministic pseudo-random kernel for invariant sweeps."""
    space = AddressSpace()
    shared = space.alloc("shared", max(1, shared_rows), 32)
    private = space.alloc("private", n_ctas * accesses_per_cta + 1, 32)

    def trace(bx, by, bz):
        state = (seed * 9176 + bx * 2654435761) & 0xFFFFFFFF
        accesses = []
        for k in range(accesses_per_cta):
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            if shared_rows and state % 3 == 0:
                row = (state >> 8) % shared_rows
                accesses.append(read(shared.addr(row, 0), 4, 32, 4))
            elif state % 5 == 0:
                accesses.append(write(private.addr(bx * accesses_per_cta + k, 0),
                                      4, 32, 4))
            else:
                accesses.append(read(private.addr(bx * accesses_per_cta + k, 0),
                                     4, 32, 4, stream=True))
        return accesses

    return KernelSpec(name="rand", grid=Dim3(n_ctas), block=Dim3(64),
                      trace=trace, regs_per_thread=16)


@settings(max_examples=12, deadline=None)
@given(n_ctas=st.integers(1, 80), accesses=st.integers(1, 12),
       shared=st.integers(0, 6), seed=st.integers(0, 50))
def test_property_conservation_baseline(n_ctas, accesses, shared, seed):
    kernel = random_kernel(n_ctas, accesses, shared, seed)
    metrics = GpuSimulator(TESLA_K40).run(kernel, seed=seed)
    # every CTA ran once
    assert metrics.ctas_executed == n_ctas
    assert sum(metrics.ctas_per_sm) == n_ctas
    # warp accesses counted exactly
    assert metrics.warp_accesses == n_ctas * accesses
    # hierarchy conservation
    assert metrics.dram_transactions <= metrics.l2_transactions
    assert metrics.l2.accesses == metrics.l2_transactions
    assert metrics.cycles >= max(metrics.sm_cycles[:1] or [0])
    assert metrics.cycles == max(metrics.sm_cycles)


@settings(max_examples=10, deadline=None)
@given(n_ctas=st.integers(2, 80), accesses=st.integers(1, 10),
       shared=st.integers(0, 6), seed=st.integers(0, 20))
def test_property_plans_preserve_traffic_identity(n_ctas, accesses, shared,
                                                  seed):
    """Every plan executes the same logical work: warp-access counts
    and write traffic are identical across BSL / RD / CLU."""
    kernel = random_kernel(n_ctas, accesses, shared, seed)
    gpu = GTX570
    sim = GpuSimulator(gpu)
    base = sim.run(kernel, seed=seed)
    rd = sim.run(kernel, redirection_plan(kernel, gpu, X_PARTITION),
                 seed=seed)
    clu = sim.run(kernel, agent_plan(kernel, gpu, X_PARTITION), seed=seed)
    for metrics in (rd, clu):
        assert metrics.warp_accesses == base.warp_accesses
        assert metrics.ctas_executed == base.ctas_executed
        assert metrics.l2_write_transactions == base.l2_write_transactions


class TestEdgeShapes:
    def test_single_cta_kernel(self):
        kernel = random_kernel(1, 4, 2, seed=0)
        metrics = GpuSimulator(GTX980).run(kernel)
        assert metrics.ctas_executed == 1
        assert sum(1 for c in metrics.ctas_per_sm if c) == 1

    def test_fewer_ctas_than_sms(self):
        kernel = random_kernel(5, 4, 2, seed=1)
        metrics = GpuSimulator(TESLA_K40).run(kernel)  # 15 SMs
        assert metrics.ctas_executed == 5

    def test_empty_trace_cta(self):
        kernel = KernelSpec(name="empty", grid=Dim3(10), block=Dim3(32),
                            trace=lambda bx, by, bz: [])
        metrics = GpuSimulator(TESLA_K40).run(kernel)
        assert metrics.ctas_executed == 10
        assert metrics.warp_accesses == 0
        assert metrics.cycles > 0  # fixed compute still runs

    def test_one_access_traces_terminate(self):
        # regression guard: short traces must not deadlock the
        # pipelined-join interleave
        kernel = KernelSpec(
            name="short", grid=Dim3(120), block=Dim3(32),
            trace=lambda bx, by, bz: [read(bx * 128, 4, 32, 4)])
        metrics = GpuSimulator(GTX570).run(kernel)
        assert metrics.ctas_executed == 120

    def test_huge_cta_count_scheduled(self):
        kernel = random_kernel(600, 2, 3, seed=2)
        metrics = GpuSimulator(GTX980).run(kernel)
        assert metrics.ctas_executed == 600
        assert max(metrics.ctas_per_sm) - min(metrics.ctas_per_sm) <= \
            GTX980.cta_slots
