"""Occupancy model tests: per-resource limits and Table-2 spot checks."""

import pytest

from repro.gpu.config import GTX570, GTX980, TESLA_K40
from repro.gpu.occupancy import (
    max_ctas_per_sm, occupancy_report, theoretical_occupancy)
from repro.kernels.kernel import Dim3, KernelSpec


def kernel_with(block=256, regs=16, smem=0):
    return KernelSpec(name="probe", grid=Dim3(64), block=Dim3(block),
                      trace=lambda bx, by, bz: [],
                      regs_per_thread=regs, smem_per_cta=smem)


class TestResourceLimits:
    def test_cta_slot_limit(self):
        # tiny CTAs: bounded by the 8 CTA slots on Fermi
        assert max_ctas_per_sm(GTX570, kernel_with(block=32, regs=8)) == 8

    def test_warp_slot_limit(self):
        # 8 warps/CTA on Fermi: 48 slots / 8 = 6
        assert max_ctas_per_sm(GTX570, kernel_with(block=256, regs=8)) == 6

    def test_register_limit(self):
        # 63 regs/thread * 256 threads ~ 16K regs -> 32K/16K = 2 on Fermi
        kernel = kernel_with(block=256, regs=63)
        report = occupancy_report(GTX570, kernel)
        assert report.limiting_resource == "registers"
        assert report.ctas_per_sm == 2

    def test_smem_limit(self):
        kernel = kernel_with(block=32, regs=8, smem=24 * 1024)
        report = occupancy_report(GTX570, kernel)
        assert report.limiting_resource == "shared_memory"
        assert report.ctas_per_sm == 2

    def test_unlaunchable_kernel_raises(self):
        kernel = kernel_with(block=32, smem=1024 * 1024)
        with pytest.raises(ValueError, match="cannot be launched"):
            max_ctas_per_sm(GTX570, kernel)

    def test_register_allocation_granularity(self):
        # 17 regs/thread rounds to 768 regs per warp (unit 256), not 544
        kernel = kernel_with(block=256, regs=17)
        report = occupancy_report(TESLA_K40, kernel)
        assert report.limit_registers == 65536 // (768 * 8)


class TestTable2SpotChecks:
    """The occupancy model reproduces Table 2's baseline CTAs/SM."""

    @pytest.mark.parametrize("abbr, gpu, expected", [
        ("KMN", GTX570, 6), ("KMN", TESLA_K40, 8),
        ("MM", GTX570, 1), ("MM", TESLA_K40, 2), ("MM", GTX980, 2),
        ("NN", GTX570, 8), ("NN", TESLA_K40, 16), ("NN", GTX980, 32),
        ("HS", GTX570, 3),
        ("BS", GTX570, 8), ("BS", TESLA_K40, 16), ("BS", GTX980, 16),
    ])
    def test_paper_value(self, abbr, gpu, expected):
        from repro.workloads.registry import workload
        kernel = workload(abbr).kernel(config=gpu)
        assert max_ctas_per_sm(gpu, kernel) == expected

    def test_majority_of_table2_matches(self):
        from repro.experiments.table2 import run_table2
        result = run_table2()
        assert result.match_fraction >= 0.75
        assert all(row.ctas_close or row.ctas_match is False
                   for row in result.rows)

    def test_all_table2_within_documented_slack(self):
        # the residual cells differ by undocumented per-generation
        # allocation granularity; the worst case is SAD on Pascal
        # (model 25 vs paper 20)
        from repro.experiments.table2 import run_table2
        for row in run_table2().rows:
            for model, paper in zip(row.model_ctas, row.paper_ctas):
                assert abs(model - paper) <= 5, row.workload.abbr


class TestTheoreticalOccupancy:
    def test_full_occupancy(self):
        kernel = kernel_with(block=256, regs=8)
        assert theoretical_occupancy(TESLA_K40, kernel) == 1.0

    def test_partial_occupancy(self):
        kernel = kernel_with(block=1024, regs=63)  # 32 warps, reg-bound
        occ = theoretical_occupancy(TESLA_K40, kernel)
        assert 0.0 < occ < 1.0

    def test_big_cta_fermi(self):
        # 32-warp CTA on Fermi: only 1 fits (48 warp slots)
        kernel = kernel_with(block=1024, regs=16)
        assert max_ctas_per_sm(GTX570, kernel) == 1
