"""GigaThread model tests: completeness, policy shape, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.scheduler import (
    DEFAULT_SCHEDULER, ObservedScheduler, RandomizedScheduler,
    RoundRobinScheduler, SCHEDULERS)


def drain(state, num_sms, capacity):
    """Pull waves round-robin until empty; return per-SM lists."""
    out = [[] for _ in range(num_sms)]
    while state.remaining() > 0:
        progress = False
        for sm in range(num_sms):
            taken = state.take(sm, capacity)
            if taken:
                progress = True
                out[sm].extend(taken)
        if not progress:
            break
    return out


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
class TestCompleteness:
    def test_every_cta_dispatched_exactly_once(self, name):
        scheduler = SCHEDULERS[name]
        state = scheduler.start(100, 8, 4, seed=1)
        out = drain(state, 8, 4)
        flat = sorted(x for lst in out for x in lst)
        assert flat == list(range(100))

    def test_deterministic_per_seed(self, name):
        scheduler = SCHEDULERS[name]
        a = drain(scheduler.start(64, 4, 4, seed=7), 4, 4)
        b = drain(scheduler.start(64, 4, 4, seed=7), 4, 4)
        assert a == b

    def test_remaining_counts_down(self, name):
        state = SCHEDULERS[name].start(20, 4, 2, seed=0)
        assert state.remaining() == 20
        state.take(0, 2)
        assert state.remaining() == 18


class TestRoundRobin:
    def test_strict_rr_assignment(self):
        state = RoundRobinScheduler().start(12, 4, 2, seed=0)
        assert state.take(0, 3) == [0, 4, 8]
        assert state.take(1, 3) == [1, 5, 9]

    def test_sm_queues_are_private(self):
        state = RoundRobinScheduler().start(8, 4, 8, seed=0)
        assert state.take(3, 8) == [3, 7]
        assert state.take(3, 8) == []


class TestObserved:
    def test_first_turnaround_is_mostly_rr(self):
        scheduler = ObservedScheduler(swap_fraction=0.0)
        state = scheduler.start(200, 10, 4, seed=0)
        for sm in range(10):
            wave = state.take(sm, 4)
            assert wave == [sm, sm + 10, sm + 20, sm + 30]

    def test_later_waves_are_demand_driven(self):
        scheduler = ObservedScheduler(swap_fraction=0.0)
        state = scheduler.start(200, 10, 4, seed=0)
        for sm in range(10):
            state.take(sm, 4)
        # whoever asks next gets the next ids in order
        assert state.take(7, 4) == [40, 41, 42, 43]
        assert state.take(2, 4) == [44, 45, 46, 47]

    def test_swaps_disturb_first_wave(self):
        tidy = drain(ObservedScheduler(0.0).start(120, 10, 4, seed=3), 10, 4)
        messy = drain(ObservedScheduler(0.5).start(120, 10, 4, seed=3), 10, 4)
        assert tidy != messy

    def test_invalid_swap_fraction(self):
        with pytest.raises(ValueError):
            ObservedScheduler(swap_fraction=1.5)


class TestRandomized:
    def test_shuffles_within_turnaround_windows(self):
        state = RandomizedScheduler().start(80, 4, 4, seed=5)
        first_window = []
        for sm in range(4):
            first_window.extend(state.take(sm, 4))
        # the first window holds exactly the first 16 ids, reordered
        assert sorted(first_window) == list(range(16))
        assert first_window != list(range(16))

    def test_different_seeds_differ(self):
        a = drain(RandomizedScheduler().start(64, 4, 4, seed=1), 4, 4)
        b = drain(RandomizedScheduler().start(64, 4, 4, seed=2), 4, 4)
        assert a != b

    def test_default_scheduler_is_randomized(self):
        # Section 3.1-(3): real-world dispatch is closest to the
        # random-within-turnaround pattern
        assert isinstance(DEFAULT_SCHEDULER, RandomizedScheduler)


@settings(max_examples=50, deadline=None)
@given(n_ctas=st.integers(1, 300), num_sms=st.integers(1, 20),
       capacity=st.integers(1, 8), seed=st.integers(0, 100),
       name=st.sampled_from(sorted(SCHEDULERS)))
def test_property_all_schedulers_dispatch_each_cta_once(
        n_ctas, num_sms, capacity, seed, name):
    state = SCHEDULERS[name].start(n_ctas, num_sms, capacity, seed)
    out = drain(state, num_sms, capacity)
    flat = sorted(x for lst in out for x in lst)
    assert flat == list(range(n_ctas))
