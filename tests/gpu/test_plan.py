"""Execution plan validation tests."""

import pytest

from repro.gpu.plan import ExecutionPlan, baseline_plan


class TestExecutionPlan:
    def test_baseline_is_identity(self):
        plan = baseline_plan()
        assert plan.scheme == "BSL"
        assert plan.mode == "scheduled"
        assert plan.resolve(7) == 7
        assert plan.per_cta_overhead == 0.0

    def test_dispatch_map_applied(self):
        plan = ExecutionPlan(mode="scheduled",
                             dispatch_map=lambda u: u * 2)
        assert plan.resolve(3) == 6

    def test_placed_requires_tasks(self):
        with pytest.raises(ValueError, match="sm_tasks"):
            ExecutionPlan(mode="placed", active_agents=2)

    def test_placed_requires_agents(self):
        with pytest.raises(ValueError, match="active_agents"):
            ExecutionPlan(mode="placed", sm_tasks=[[0], [1]])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown plan mode"):
            ExecutionPlan(mode="magic")

    def test_valid_placed_plan(self):
        plan = ExecutionPlan(mode="placed", sm_tasks=[[0, 1], [2]],
                             active_agents=1, scheme="CLU")
        assert plan.sm_tasks[0] == [0, 1]
