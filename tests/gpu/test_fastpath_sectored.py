"""Direct unit tests for :class:`repro.gpu.fastpath.FastSectoredCache`.

The sectored L1 is exercised end-to-end by the differential fuzzers,
but only through whole-kernel runs; these tests pin its own contract —
per-sector isolation, install/contains, flush/settle semantics, and
the aggregated stats view — at the single-operation level, where a
regression is diagnosable in one glance.
"""

from __future__ import annotations

import pytest

from repro.gpu.fastpath import FastSectoredCache, FastSetAssociativeCache
from repro.gpu.refmodel import WritePolicy

LINE = 128
#: 4 sectors x 2 sets x assoc 4 lines of 128 B.
SIZE = 4 * 2 * 4 * LINE


def make_cache(sectors: int = 4) -> FastSectoredCache:
    return FastSectoredCache(SIZE, LINE, assoc=4, sectors=sectors)


def test_constructor_validation():
    with pytest.raises(ValueError):
        FastSectoredCache(SIZE, LINE, assoc=4, sectors=0)
    with pytest.raises(ValueError):
        FastSectoredCache(SIZE + LINE, LINE, assoc=4, sectors=4)


def test_miss_then_hit_within_a_sector():
    cache = make_cache()
    hit, ready = cache.access(0, now=0.0, miss_fill_latency=100.0, sector=1)
    assert not hit and ready == 100.0
    hit, ready = cache.access(0, now=200.0, miss_fill_latency=100.0, sector=1)
    assert hit and ready == 200.0


def test_sectors_are_isolated():
    """The same address is a fresh miss in every other sector."""
    cache = make_cache()
    cache.access(0, now=0.0, miss_fill_latency=10.0, sector=0)
    for sector in (1, 2, 3):
        assert not cache.contains(0, sector=sector)
        hit, _ = cache.access(0, now=50.0, miss_fill_latency=10.0,
                              sector=sector)
        assert not hit, f"sector {sector} leaked sector 0's line"
    assert cache.stats.accesses == 4
    assert cache.stats.misses == 4


def test_sector_index_wraps():
    """``sector`` is taken modulo the sector count (how the simulator
    maps warp lanes onto L1 partitions)."""
    cache = make_cache(sectors=4)
    cache.install(0, ready_at=0.0, sector=1)
    assert cache.contains(0, sector=5)  # 5 % 4 == 1
    assert not cache.contains(0, sector=0)


def test_install_fills_without_counting_an_access():
    cache = make_cache()
    cache.install(0, ready_at=25.0, sector=2)
    assert cache.contains(0, sector=2)
    assert cache.stats.accesses == 0
    # The installed line is a hit, but its fill is still in flight:
    # hitting it before ready_at reserves until the fill lands.
    hit, ready = cache.access(0, now=10.0, miss_fill_latency=99.0, sector=2)
    assert hit and ready == 25.0
    assert cache.stats.reserved_hits == 1


def test_write_evict_policy_routes_per_sector():
    cache = make_cache()
    cache.access(0, now=0.0, miss_fill_latency=10.0, sector=0)
    cache.access(0, now=20.0, miss_fill_latency=10.0, is_write=True,
                 sector=0)
    assert not cache.contains(0, sector=0)
    assert cache.stats.write_evictions == 1


def test_flush_drops_lines_and_keeps_counters():
    cache = make_cache()
    for sector in range(4):
        cache.access(sector * LINE, now=0.0, miss_fill_latency=10.0,
                     sector=sector)
    before = cache.stats
    cache.flush()
    for sector in range(4):
        assert not cache.contains(sector * LINE, sector=sector)
    after = cache.stats
    assert after.accesses == before.accesses == 4
    assert after.misses == before.misses == 4


def test_settle_completes_pending_fills():
    cache = make_cache()
    cache.access(0, now=0.0, miss_fill_latency=100.0, sector=3)
    cache.settle()
    hit, ready = cache.access(0, now=1.0, miss_fill_latency=100.0, sector=3)
    assert hit and ready == 1.0, "settled fill should no longer reserve"
    assert cache.stats.reserved_hits == 0


def test_reset_stats_zeroes_all_sectors():
    cache = make_cache()
    for sector in range(4):
        cache.access(0, now=0.0, miss_fill_latency=10.0, sector=sector)
    cache.reset_stats()
    stats = cache.stats
    assert stats.accesses == 0 and stats.misses == 0
    assert cache.contains(0, sector=0), "reset_stats must not flush"


def test_stats_aggregates_across_sectors():
    cache = make_cache()
    cache.access(0, now=0.0, miss_fill_latency=10.0, sector=0)     # miss
    cache.access(0, now=50.0, miss_fill_latency=10.0, sector=0)    # hit
    cache.access(LINE, now=0.0, miss_fill_latency=10.0, sector=1)  # miss
    stats = cache.stats
    assert (stats.accesses, stats.hits, stats.misses) == (3, 1, 2)


def test_eviction_within_one_sector_set():
    """Filling one set past its associativity evicts LRU-first, and
    only within that sector's own partition."""
    cache = make_cache()
    part = cache._parts[0]
    assert isinstance(part, FastSetAssociativeCache)
    n_sets = part.n_sets
    # Five conflicting lines in a 4-way set: the first one inserted
    # (line 0) is the LRU victim.
    for k in range(5):
        cache.access(k * n_sets * LINE, now=float(k),
                     miss_fill_latency=1.0, sector=0)
    assert not cache.contains(0, sector=0)
    for k in range(1, 5):
        assert cache.contains(k * n_sets * LINE, sector=0)


def test_default_write_policy_matches_l1():
    assert make_cache()._parts[0].write_policy is WritePolicy.WRITE_EVICT
