"""Simulator tests: completeness, determinism, plan semantics, and the
cache/timing effects the paper's evaluation depends on.
"""

from repro.core.agent import agent_plan
from repro.core.indexing import X_PARTITION
from repro.core.redirection import redirection_plan
from repro.gpu.scheduler import RoundRobinScheduler
from repro.gpu.simulator import GpuSimulator, simulate

from tests.conftest import make_row_band_kernel, make_streaming_kernel


class TestBaselineExecution:
    def test_every_cta_executes_once(self, any_gpu, shared_table_kernel):
        metrics = GpuSimulator(any_gpu).run(shared_table_kernel)
        assert metrics.ctas_executed == shared_table_kernel.n_ctas
        assert sum(metrics.ctas_per_sm) == shared_table_kernel.n_ctas

    def test_deterministic_per_seed(self, kepler, shared_table_kernel):
        sim = GpuSimulator(kepler)
        a = sim.run(shared_table_kernel, seed=3)
        b = sim.run(shared_table_kernel, seed=3)
        assert a.cycles == b.cycles
        assert a.l2_transactions == b.l2_transactions

    def test_positive_cycles_and_traffic(self, any_gpu, streaming_kernel):
        metrics = GpuSimulator(any_gpu).run(streaming_kernel)
        assert metrics.cycles > 0
        assert metrics.l2_read_transactions > 0
        assert metrics.l2_write_transactions > 0
        assert metrics.dram_transactions > 0

    def test_cold_simulate_helper(self, kepler, streaming_kernel):
        metrics = simulate(kepler, streaming_kernel, warmups=0)
        assert metrics.scheme == "BSL"
        assert metrics.gpu_name == kepler.name

    def test_streaming_kernel_never_hits_l1(self, kepler, streaming_kernel):
        metrics = GpuSimulator(kepler).run(streaming_kernel)
        assert metrics.l1.hits == 0

    def test_shared_table_kernel_hits_l1(self, kepler, shared_table_kernel):
        metrics = GpuSimulator(kepler).run(shared_table_kernel)
        assert metrics.l1_hit_rate > 0.2

    def test_occupancy_in_unit_range(self, any_gpu, shared_table_kernel):
        metrics = GpuSimulator(any_gpu).run(shared_table_kernel)
        assert 0.0 < metrics.achieved_occupancy <= 1.0


class TestL2TransactionAccounting:
    def test_fermi_l1_miss_is_four_l2_transactions(self, fermi,
                                                   streaming_kernel):
        metrics = GpuSimulator(fermi).run(streaming_kernel)
        # every read access misses; each 128B L1 line fill = 4 x 32B
        reads = streaming_kernel.n_ctas * 2
        assert metrics.l2_read_transactions == reads * 4

    def test_maxwell_l1_miss_is_one_l2_transaction(self, maxwell,
                                                   streaming_kernel):
        metrics = GpuSimulator(maxwell).run(streaming_kernel)
        # each 128B warp read = 4 x 32B sector accesses = 4 transactions
        reads = streaming_kernel.n_ctas * 2
        assert metrics.l2_read_transactions == reads * 4

    def test_writes_counted_separately(self, kepler, streaming_kernel):
        metrics = GpuSimulator(kepler).run(streaming_kernel)
        writes = streaming_kernel.n_ctas  # one 128B store = 4 x 32B
        assert metrics.l2_write_transactions == writes * 4

    def test_l1_disabled_routes_reads_to_l2(self, kepler, streaming_kernel):
        on = GpuSimulator(kepler).run(streaming_kernel)
        off = GpuSimulator(kepler, l1_enabled=False).run(streaming_kernel)
        assert off.l1.accesses == 0
        assert off.l2_read_transactions == on.l2_read_transactions


class TestPlacedMode:
    def test_placed_runs_all_tasks(self, kepler, shared_table_kernel):
        plan = agent_plan(shared_table_kernel, kepler, X_PARTITION)
        metrics = GpuSimulator(kepler).run(shared_table_kernel, plan)
        assert metrics.ctas_executed == shared_table_kernel.n_ctas

    def test_placed_balances_tasks(self, kepler, shared_table_kernel):
        plan = agent_plan(shared_table_kernel, kepler, X_PARTITION)
        metrics = GpuSimulator(kepler).run(shared_table_kernel, plan)
        assert max(metrics.ctas_per_sm) - min(metrics.ctas_per_sm) <= 1

    def test_placed_charges_overheads(self, maxwell, shared_table_kernel):
        plan = agent_plan(shared_table_kernel, maxwell, X_PARTITION)
        metrics = GpuSimulator(maxwell).run(shared_table_kernel, plan)
        assert metrics.overhead_cycles > 0

    def test_throttled_plan_reduces_concurrency(self, kepler,
                                                shared_table_kernel):
        sim = GpuSimulator(kepler)
        full = sim.run(shared_table_kernel,
                       agent_plan(shared_table_kernel, kepler, X_PARTITION))
        one = sim.run(shared_table_kernel,
                      agent_plan(shared_table_kernel, kepler, X_PARTITION,
                                 active_agents=1))
        assert one.achieved_occupancy < full.achieved_occupancy

    def test_ignores_scheduler(self, kepler, shared_table_kernel):
        plan = agent_plan(shared_table_kernel, kepler, X_PARTITION)
        a = GpuSimulator(kepler).run(shared_table_kernel, plan, seed=1)
        b = GpuSimulator(kepler,
                         scheduler=RoundRobinScheduler()).run(
            shared_table_kernel, plan, seed=99)
        assert a.cycles == b.cycles


class TestClusteringEffects:
    def test_clustering_improves_row_band_hit_rate(self, fermi):
        # row-band reuse is the canonical clusterable pattern
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        from repro.core.indexing import Y_PARTITION
        sim = GpuSimulator(fermi)
        base = sim.run(kernel)
        clustered = sim.run(kernel, agent_plan(kernel, fermi, Y_PARTITION))
        assert clustered.l1_hit_rate > base.l1_hit_rate
        assert clustered.l2_transactions < base.l2_transactions

    def test_redirection_under_rr_matches_cluster_affinity(self, fermi):
        kernel = make_row_band_kernel(grid_x=15, grid_y=15, band_rows=4)
        from repro.core.indexing import Y_PARTITION
        rr_sim = GpuSimulator(fermi, scheduler=RoundRobinScheduler())
        base = rr_sim.run(kernel)
        rd = rr_sim.run(kernel, redirection_plan(kernel, fermi, Y_PARTITION))
        assert rd.l2_transactions < base.l2_transactions

    def test_bypass_protects_l1_from_streams(self, kepler,
                                             shared_table_kernel):
        sim = GpuSimulator(kepler)
        plain = sim.run(shared_table_kernel,
                        agent_plan(shared_table_kernel, kepler, X_PARTITION))
        bypassed = sim.run(
            shared_table_kernel,
            agent_plan(shared_table_kernel, kepler, X_PARTITION,
                       bypass_streams=True, scheme="CLU+BPS"))
        assert bypassed.l1.accesses < plain.l1.accesses

    def test_prefetch_issues_fills(self, kepler):
        from tests.conftest import make_streaming_kernel
        kernel = make_streaming_kernel(n_ctas=400)  # several waves/SM
        plan = agent_plan(kernel, kepler, X_PARTITION,
                          prefetch_depth=2, scheme="PFH")
        metrics = GpuSimulator(kepler).run(kernel, plan)
        assert metrics.prefetch_issues > 0


class TestRecording:
    def test_per_cta_records(self, kepler, shared_table_kernel):
        metrics = GpuSimulator(kepler).run(shared_table_kernel,
                                           record_per_cta=True)
        assert len(metrics.cta_records) == shared_table_kernel.n_ctas
        ids = sorted(r.original_id for r in metrics.cta_records)
        assert ids == list(range(shared_table_kernel.n_ctas))

    def test_records_off_by_default(self, kepler, shared_table_kernel):
        metrics = GpuSimulator(kepler).run(shared_table_kernel)
        assert metrics.cta_records == []


class TestWarmMeasurement:
    def test_warm_run_sees_warm_l2(self, kepler, shared_table_kernel):
        sim = GpuSimulator(kepler)
        cold = sim.run(shared_table_kernel)
        warm = simulate(sim, shared_table_kernel, warmups=1)
        assert warm.dram_transactions < cold.dram_transactions

    def test_warm_run_l1_is_cold(self, kepler, streaming_kernel):
        # L1s are invalidated at kernel-launch boundaries
        sim = GpuSimulator(kepler)
        warm = simulate(sim, streaming_kernel, warmups=2)
        assert warm.l1.hits == 0

    def test_counters_cover_measured_launch_only(self, kepler,
                                                 shared_table_kernel):
        sim = GpuSimulator(kepler)
        single = sim.run(shared_table_kernel)
        warm = simulate(sim, shared_table_kernel, warmups=3)
        assert warm.l1.accesses == single.l1.accesses
        assert warm.ctas_executed == shared_table_kernel.n_ctas
