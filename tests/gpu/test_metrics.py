"""Metric bookkeeping tests."""

import pytest

from repro.gpu.cache import CacheStats
from repro.gpu.metrics import KernelMetrics, geometric_mean


def metrics_with(cycles=100.0, l2r=10, l2w=5, **kw):
    m = KernelMetrics(gpu_name="X", kernel_name="k", **kw)
    m.cycles = cycles
    m.l2_read_transactions = l2r
    m.l2_write_transactions = l2w
    return m


class TestKernelMetrics:
    def test_l2_transactions_sums_reads_and_writes(self):
        assert metrics_with().l2_transactions == 15

    def test_speedup_over(self):
        fast = metrics_with(cycles=50.0)
        slow = metrics_with(cycles=100.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_zero_cycles_rejected(self):
        broken = metrics_with(cycles=0.0)
        with pytest.raises(ValueError):
            broken.speedup_over(metrics_with())

    def test_l2_normalization(self):
        a = metrics_with(l2r=5, l2w=0)
        b = metrics_with(l2r=10, l2w=0)
        assert a.l2_transactions_vs(b) == pytest.approx(0.5)

    def test_l2_normalization_zero_baseline(self):
        a = metrics_with(l2r=0, l2w=0)
        b = metrics_with(l2r=0, l2w=0)
        assert a.l2_transactions_vs(b) == 1.0
        c = metrics_with(l2r=3, l2w=0)
        assert c.l2_transactions_vs(b) == float("inf")

    def test_l1_hit_rate_delegates_to_stats(self):
        m = metrics_with()
        m.l1 = CacheStats(accesses=10, hits=7, misses=3)
        assert m.l1_hit_rate == pytest.approx(0.7)

    def test_achieved_occupancy(self):
        m = metrics_with(cycles=100.0)
        m.warp_slots = 64
        m.occupancy_weighted_warps = 3200.0  # avg 32 warps resident
        assert m.achieved_occupancy == pytest.approx(0.5)

    def test_achieved_occupancy_clamped(self):
        m = metrics_with(cycles=1.0)
        m.warp_slots = 1
        m.occupancy_weighted_warps = 1e9
        assert m.achieved_occupancy == 1.0

    def test_achieved_occupancy_idle(self):
        m = metrics_with(cycles=0.0)
        assert m.achieved_occupancy == 0.0

    def test_summary_contains_key_fields(self):
        text = metrics_with().summary()
        assert "k" in text and "X" in text and "l2_trans" in text


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_order_invariant(self):
        assert geometric_mean([2, 8, 4]) == pytest.approx(
            geometric_mean([8, 4, 2]))
