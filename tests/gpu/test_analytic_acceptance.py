"""Calibration acceptance: the analytic model must *rank* like the
fast-path simulator across the workload registry.

Rung 0 exists to triage candidates, so the contract is ordinal, not
metric: pooled Spearman rank correlation of predicted cycles >= 0.9
and per-workload winner agreement >= 90% (a "winner" match tolerates
schemes the simulator scores within 5% of its own best — ties between
near-identical schemes are not ranking errors).

One architecture suffices here (the per-arch fit is the same code);
``scripts/calibrate_analytic.py`` sweeps all four when refreshing the
shipped coefficients.
"""

import pytest

from repro import api
from repro.gpu.analytic import estimate
from repro.gpu.config import TESLA_K40
from repro.gpu.plan import baseline_plan
from repro.workloads.registry import TABLE2_ORDER, workload

SCHEMES = ("BSL", "RD", "CLU", "CLU+TOT")
SCALE = 0.3

MIN_SPEARMAN = 0.9
MIN_WINNER_AGREEMENT = 0.9
WINNER_TOLERANCE = 1.05


def spearman(xs, ys):
    """Rank correlation with tie-averaged ranks (no scipy on purpose)."""
    def ranks(vals):
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        r = [0.0] * len(vals)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and vals[order[j + 1]] == vals[order[i]]:
                j += 1
            avg = (i + j) / 2.0
            for k in range(i, j + 1):
                r[order[k]] = avg
            i = j + 1
        return r
    rx, ry = ranks(xs), ranks(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    dx = sum((a - mx) ** 2 for a in rx) ** 0.5
    dy = sum((b - my) ** 2 for b in ry) ** 0.5
    return num / (dx * dy) if dx and dy else 0.0


#: A class needs this many pooled pairs before its own rho is a
#: meaningful statistic (mirrors the calibration script's floor).
MIN_CLASS_POINTS = 6


@pytest.fixture(scope="module")
def registry_comparison():
    """(simulated, analytic, class) cycle triples plus winners."""
    gpu = TESLA_K40
    sims, anas, classes = [], [], []
    winners = []  # (sim_by_scheme, ana_by_scheme) per workload
    for abbr in TABLE2_ORDER:
        spec = workload(abbr)
        kernel = spec.kernel(scale=SCALE, config=gpu)
        per_sim, per_ana = {}, {}
        for scheme in SCHEMES:
            if scheme == "BSL":
                plan = baseline_plan()
            else:
                try:
                    plan = api.cluster(kernel, scheme, gpu=gpu)
                except Exception:
                    continue  # scheme not applicable to this kernel
            per_sim[scheme] = api.simulate(abbr, gpu.name, plan=plan,
                                           scale=SCALE).cycles
            per_ana[scheme] = estimate(gpu, kernel, plan).cycles
        sims.extend(per_sim.values())
        anas.extend(per_ana.values())
        classes.extend([spec.category.value] * len(per_sim))
        if len(per_sim) >= 2:
            winners.append((per_sim, per_ana))
    return sims, anas, classes, winners


@pytest.fixture(scope="module")
def class_comparison():
    """Per-class (simulated, analytic) pairs pooled over *all four*
    architectures — the scope the shipped calibration file covers."""
    from repro.gpu.config import BY_ARCHITECTURE
    per_class = {}
    for gpu in BY_ARCHITECTURE.values():
        for abbr in TABLE2_ORDER:
            spec = workload(abbr)
            kernel = spec.kernel(scale=SCALE, config=gpu)
            for scheme in SCHEMES:
                if scheme == "BSL":
                    plan = baseline_plan()
                else:
                    try:
                        plan = api.cluster(kernel, scheme, gpu=gpu)
                    except Exception:
                        continue
                sims, anas = per_class.setdefault(
                    spec.category.value, ([], []))
                sims.append(api.simulate(abbr, gpu.name, plan=plan,
                                         scale=SCALE).cycles)
                anas.append(estimate(gpu, kernel, plan).cycles)
    return per_class


class TestAcceptance:
    def test_covers_the_registry(self, registry_comparison):
        sims, _, _, winners = registry_comparison
        assert len(winners) >= int(len(TABLE2_ORDER) * 0.9)
        assert len(sims) >= len(TABLE2_ORDER) * 2

    def test_spearman_rank_correlation(self, registry_comparison):
        sims, anas, _, _ = registry_comparison
        rho = spearman(sims, anas)
        assert rho >= MIN_SPEARMAN, (
            f"analytic-vs-simulated Spearman rho {rho:.4f} fell below "
            f"{MIN_SPEARMAN}; refresh scripts/calibrate_analytic.py or "
            f"fix the model")

    def test_spearman_per_workload_class(self, class_comparison):
        """The ordinal contract holds per locality class over the
        calibration file's full scope (every architecture pooled).

        Cross-architecture pooling is deliberate: within one arch a
        class's rho is invariant to any monotone calibration, but the
        pooled ranking interleaves architectures by their *calibrated*
        magnitudes — so this is the statistic the per-class fits are
        accountable to, and a bad class fit shows up here."""
        checked = 0
        for name, (sims, anas) in sorted(class_comparison.items()):
            if len(sims) < MIN_CLASS_POINTS:
                continue
            rho = spearman(sims, anas)
            assert rho >= MIN_SPEARMAN, (
                f"class {name!r}: Spearman rho {rho:.4f} fell below "
                f"{MIN_SPEARMAN} over {len(sims)} pairs; refresh "
                f"scripts/calibrate_analytic.py or fix the model")
            checked += 1
        assert checked >= 3  # the registry spans several classes

    def test_shipped_class_fits_are_wellformed(self):
        """The checked-in JSON carries per-class refinement fits and
        every one of them is monotone (a > 0), so class calibration
        can never invert a ranking the arch fit preserved."""
        from repro.gpu.analytic import load_calibration
        calibration = load_calibration()
        assert calibration, "shipped calibration file failed to load"
        with_classes = 0
        for arch, entry in calibration.items():
            for name, fit in entry.get("classes", {}).items():
                assert fit["a"] > 0, (arch, name, fit)
                with_classes += 1
        assert with_classes, "no per-class fits in the shipped file"

    def test_winner_agreement(self, registry_comparison):
        _, _, _, winners = registry_comparison
        agree = 0
        mismatches = []
        for per_sim, per_ana in winners:
            sim_best = min(per_sim, key=per_sim.get)
            ana_pick = min(per_ana, key=per_ana.get)
            if per_sim[ana_pick] <= per_sim[sim_best] * WINNER_TOLERANCE:
                agree += 1
            else:
                mismatches.append((sim_best, ana_pick))
        rate = agree / len(winners)
        assert rate >= MIN_WINNER_AGREEMENT, (
            f"winner agreement {agree}/{len(winners)} = {rate:.0%} "
            f"below {MIN_WINNER_AGREEMENT:.0%}; mismatches: {mismatches}")
