"""Conservation laws every GigaThread Engine model must obey.

Whatever the dispatch policy — strict round-robin, the observed
demand-driven pattern, or the GTX750Ti's randomized windows — a
launch of N CTAs must hand out exactly the dispatch positions
``0..N-1``, each exactly once, with ``remaining()`` decreasing by
exactly what was taken.  Randomized policies must additionally be a
pure function of their seed.
"""

from __future__ import annotations

import random

import pytest

from repro.gpu.scheduler import SCHEDULERS

NAMES = sorted(SCHEDULERS)


def drain(state, num_sms, rng):
    """Drain a scheduler state with a randomized request pattern,
    checking remaining() bookkeeping at every step."""
    dispatched = []
    before = state.remaining()
    stall_budget = 10_000
    while state.remaining() > 0:
        sm = rng.randrange(num_sms)
        count = rng.randrange(1, 5)
        taken = state.take(sm, count)
        assert len(taken) <= count
        after = state.remaining()
        assert after == before - len(taken), "remaining() out of sync"
        assert after <= before, "remaining() must be monotone"
        before = after
        dispatched.extend(taken)
        if not taken:
            # Partitioned queues can empty per-SM; a stuck drain loop
            # would mean CTAs that no request pattern can reach.
            stall_budget -= 1
            assert stall_budget > 0, "scheduler wedged with CTAs remaining"
    return dispatched


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("n_ctas,num_sms,capacity", [
    (1, 1, 1),
    (7, 3, 2),
    (60, 15, 4),
    (97, 16, 8),
    (256, 20, 32),
])
def test_every_cta_dispatched_exactly_once(name, n_ctas, num_sms, capacity):
    for seed in (0, 1, 42):
        state = SCHEDULERS[name].start(n_ctas, num_sms, capacity, seed=seed)
        assert state.remaining() == n_ctas
        dispatched = drain(state, num_sms, random.Random(1000 + seed))
        assert sorted(dispatched) == list(range(n_ctas)), \
            f"{name}: lost or duplicated CTAs"
        assert state.remaining() == 0
        assert state.take(0, 4) == []


@pytest.mark.parametrize("name", NAMES)
def test_dispatch_order_deterministic_per_seed(name):
    """Same seed -> identical dispatch sequence under identical requests."""
    orders = []
    for _ in range(2):
        state = SCHEDULERS[name].start(120, 8, 4, seed=7)
        order = []
        rng = random.Random(99)
        while state.remaining() > 0:
            order.append((tuple(state.take(rng.randrange(8), 2))))
        orders.append(order)
    assert orders[0] == orders[1]


def test_randomized_scheduler_varies_with_seed():
    """Different seeds really do shuffle (the whole point of the model)."""
    takes = []
    for seed in (0, 1):
        state = SCHEDULERS["randomized"].start(200, 8, 4, seed=seed)
        takes.append([state.take(sm, 4) for sm in range(8)])
    assert takes[0] != takes[1]


def test_observed_first_wave_stays_near_round_robin():
    """The observed policy's first wave is RR with mild disorder: it
    still dispatches the first-wave id set, just mildly permuted."""
    num_sms, capacity, n_ctas = 15, 4, 200
    first_count = num_sms * capacity
    state = SCHEDULERS["observed"].start(n_ctas, num_sms, capacity, seed=3)
    first_wave = []
    for sm in range(num_sms):
        first_wave.extend(state.take(sm, capacity))
    assert sorted(first_wave) == list(range(first_count))
