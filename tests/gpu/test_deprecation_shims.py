"""The pre-1.1 entry points must warn *and* stay result-compatible."""

import warnings

import pytest

from repro.gpu.simulator import (
    GpuSimulator,
    run_baseline,
    run_measured,
    simulate,
)


class TestRunBaselineShim:
    def test_warns_and_matches_cold_simulate(self, kepler,
                                             shared_table_kernel):
        with pytest.warns(DeprecationWarning, match="run_baseline"):
            legacy = run_baseline(kepler, shared_table_kernel, seed=2)
        modern = simulate(kepler, shared_table_kernel, seed=2, warmups=0)
        assert legacy.cycles == modern.cycles
        assert legacy.l2_transactions == modern.l2_transactions
        assert legacy.scheme == "BSL"


class TestRunMeasuredShim:
    def test_warns_and_matches_simulate(self, kepler, shared_table_kernel):
        with pytest.warns(DeprecationWarning, match="run_measured"):
            legacy = run_measured(GpuSimulator(kepler), shared_table_kernel,
                                  seed=2, warmups=1)
        modern = simulate(GpuSimulator(kepler), shared_table_kernel,
                          seed=2, warmups=1)
        assert legacy.cycles == modern.cycles
        assert legacy.l1.hits == modern.l1.hits

    def test_modern_path_does_not_warn(self, kepler, streaming_kernel):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(GpuSimulator(kepler), streaming_kernel)
